"""Tests for the GSP auction."""

import pytest
from hypothesis import given, strategies as st

from repro.auction import Candidate, run_auction
from repro.config import AuctionConfig
from repro.entities.enums import MatchType


def make_candidate(advertiser_id=1, ad_id=None, bid=1.0, quality=0.1, fraud=False):
    return Candidate(
        advertiser_id=advertiser_id,
        ad_id=ad_id if ad_id is not None else advertiser_id * 10,
        match_type=MatchType.EXACT,
        max_bid=bid,
        quality=quality,
        fraud_labeled=fraud,
    )


CONFIG = AuctionConfig(
    mainline_slots=2,
    sidebar_slots=3,
    mainline_reserve=0.1,
    reserve_score=0.01,
    default_max_bid=0.5,
    price_increment=0.01,
)


class TestRanking:
    def test_rank_by_bid_times_quality(self):
        low_bid_high_quality = make_candidate(1, bid=1.0, quality=0.3)
        high_bid_low_quality = make_candidate(2, bid=2.0, quality=0.1)
        outcome = run_auction([high_bid_low_quality, low_bid_high_quality], CONFIG)
        assert outcome.shown[0].candidate.advertiser_id == 1

    def test_empty(self):
        assert run_auction([], CONFIG).n_shown == 0

    def test_positions_sequential(self):
        candidates = [make_candidate(i, bid=2.0 - 0.1 * i) for i in range(1, 5)]
        outcome = run_auction(candidates, CONFIG)
        assert [ad.position for ad in outcome.shown] == list(
            range(1, outcome.n_shown + 1)
        )

    def test_deterministic_tie_break(self):
        a = make_candidate(1, bid=1.0)
        b = make_candidate(2, bid=1.0)
        first = run_auction([a, b], CONFIG)
        second = run_auction([b, a], CONFIG)
        assert [s.candidate.advertiser_id for s in first.shown] == [
            s.candidate.advertiser_id for s in second.shown
        ]

    def test_per_advertiser_cap(self):
        candidates = [
            make_candidate(1, ad_id=1, bid=2.0),
            make_candidate(1, ad_id=2, bid=1.9),
            make_candidate(2, ad_id=3, bid=1.0),
        ]
        outcome = run_auction(candidates, CONFIG)
        ids = [s.candidate.advertiser_id for s in outcome.shown]
        assert ids.count(1) == 1
        assert 2 in ids


class TestReserves:
    def test_below_reserve_hidden(self):
        outcome = run_auction([make_candidate(1, bid=0.05, quality=0.1)], CONFIG)
        assert outcome.n_shown == 0

    def test_mainline_promotion_requires_reserve(self):
        weak = make_candidate(1, bid=0.5, quality=0.1)  # rank 0.05 < 0.1
        outcome = run_auction([weak], CONFIG)
        assert outcome.n_shown == 1
        assert not outcome.shown[0].mainline

    def test_slot_limits(self):
        candidates = [make_candidate(i, bid=5.0) for i in range(1, 20)]
        outcome = run_auction(candidates, CONFIG)
        assert outcome.n_shown == CONFIG.total_slots
        mainline = [s for s in outcome.shown if s.mainline]
        assert len(mainline) == CONFIG.mainline_slots


class TestPricing:
    def test_second_price_below_bid(self):
        candidates = [
            make_candidate(1, bid=2.0, quality=0.2),
            make_candidate(2, bid=1.0, quality=0.2),
        ]
        outcome = run_auction(candidates, CONFIG)
        winner = outcome.shown[0]
        # Pays next rank / own quality + increment = 0.2/0.2 + 0.01.
        assert winner.price_per_click == pytest.approx(1.01)
        assert winner.price_per_click <= winner.candidate.max_bid

    def test_last_ad_pays_reserve_floor(self):
        outcome = run_auction([make_candidate(1, bid=2.0, quality=0.2)], CONFIG)
        only = outcome.shown[0]
        assert only.price_per_click == pytest.approx(0.01 / 0.2 + 0.01)

    def test_price_capped_at_max_bid(self):
        candidates = [
            make_candidate(1, bid=1.0, quality=0.2),
            make_candidate(2, bid=0.99, quality=0.2),
        ]
        outcome = run_auction(candidates, CONFIG)
        assert outcome.shown[0].price_per_click <= 1.0

    def test_fraud_count(self):
        candidates = [
            make_candidate(1, bid=2.0, fraud=True),
            make_candidate(2, bid=1.5, fraud=False),
            make_candidate(3, bid=1.2, fraud=True),
        ]
        outcome = run_auction(candidates, CONFIG)
        assert outcome.n_fraud_labeled() == 2


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 50),
                st.floats(0.05, 50.0),
                st.floats(0.001, 1.0),
            ),
            max_size=30,
        )
    )
    def test_invariants(self, raw):
        candidates = [
            make_candidate(adv_id, ad_id=i, bid=bid, quality=quality)
            for i, (adv_id, bid, quality) in enumerate(raw)
        ]
        outcome = run_auction(candidates, CONFIG)
        # No more ads than slots; positions strictly increasing.
        assert outcome.n_shown <= CONFIG.total_slots
        ranks = [s.candidate.rank_score for s in outcome.shown]
        assert all(a >= b for a, b in zip(ranks, ranks[1:]))
        for shown in outcome.shown:
            assert shown.price_per_click <= shown.candidate.max_bid + 1e-9
            assert shown.price_per_click > 0
            assert shown.candidate.rank_score >= CONFIG.reserve_score
        # Per-advertiser cap respected.
        ids = [s.candidate.advertiser_id for s in outcome.shown]
        assert all(ids.count(i) <= CONFIG.per_advertiser_cap for i in set(ids))


class TestCandidateValidation:
    def test_bad_bid(self):
        with pytest.raises(ValueError):
            make_candidate(bid=0.0)

    def test_bad_quality(self):
        with pytest.raises(ValueError):
            make_candidate(quality=0.0)
