"""Property-based tests for GSP pricing invariants."""

from hypothesis import given, strategies as st

from repro.auction.gsp import Candidate
from repro.auction.pricing import gsp_price
from repro.config import AuctionConfig
from repro.entities.enums import MatchType

CONFIG = AuctionConfig()

BIDS = st.floats(0.05, 100.0)
QUALITIES = st.floats(0.001, 2.0)


def candidate(bid: float, quality: float) -> Candidate:
    return Candidate(1, 1, MatchType.EXACT, bid, quality)


class TestGspPriceProperties:
    @given(BIDS, QUALITIES, st.floats(0.0, 50.0))
    def test_price_never_exceeds_bid(self, bid, quality, next_score):
        price = gsp_price(candidate(bid, quality), next_score, CONFIG)
        assert price <= bid + 1e-12

    @given(BIDS, QUALITIES)
    def test_price_positive(self, bid, quality):
        assert gsp_price(candidate(bid, quality), None, CONFIG) > 0

    @given(BIDS, QUALITIES, st.floats(0.0, 10.0), st.floats(0.0, 10.0))
    def test_price_monotone_in_next_score(self, bid, quality, a, b):
        low, high = sorted((a, b))
        c = candidate(bid, quality)
        assert gsp_price(c, low, CONFIG) <= gsp_price(c, high, CONFIG) + 1e-12

    @given(BIDS, QUALITIES)
    def test_no_competitor_means_floor(self, bid, quality):
        c = candidate(bid, quality)
        floor = CONFIG.reserve_score / quality + CONFIG.price_increment
        assert gsp_price(c, None, CONFIG) == min(floor, bid)

    @given(BIDS, st.floats(0.01, 2.0), st.floats(0.01, 2.0), st.floats(0.0, 10.0))
    def test_higher_quality_pays_less(self, bid, q1, q2, next_score):
        """For a fixed competitor score, better quality means a lower price."""
        low_q, high_q = sorted((q1, q2))
        price_low = gsp_price(candidate(bid, low_q), next_score, CONFIG)
        price_high = gsp_price(candidate(bid, high_q), next_score, CONFIG)
        assert price_high <= price_low + 1e-9
