"""Differential tests: batched GSP kernel vs the scalar oracle.

The batched kernel (:func:`repro.auction.batch.run_auction_batch`) must
reproduce the scalar :func:`repro.auction.gsp.run_auction` *exactly* —
same ranking, same tie-breaking, same per-advertiser dedupe, same
layout, bit-equal prices — across randomized candidate sets, because
the simulation engine relies on the two paths being interchangeable.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.auction import Candidate, run_auction, run_auction_batch
from repro.config import AuctionConfig
from repro.entities.enums import MatchType

CONFIGS = {
    "cap1": AuctionConfig(
        mainline_slots=2,
        sidebar_slots=3,
        mainline_reserve=0.1,
        reserve_score=0.01,
        per_advertiser_cap=1,
    ),
    "cap3": AuctionConfig(per_advertiser_cap=3),
    "high_reserve": AuctionConfig(
        mainline_reserve=5.0, reserve_score=4.0, per_advertiser_cap=2
    ),
}

# Discrete bid/quality pools make rank-score ties (and below-reserve
# candidates) common, exercising the tie-break and layout edge cases.
_candidate = st.tuples(
    st.integers(1, 6),  # advertiser_id: few advertisers -> dedupe hits
    st.integers(1, 40),  # ad_id
    st.sampled_from([0.05, 0.5, 1.0, 1.0, 2.0, 7.0]),  # max_bid
    st.sampled_from([0.004, 0.01, 0.1, 0.1, 0.5, 1.0]),  # quality
    st.booleans(),  # fraud_labeled
)
_segments = st.lists(st.lists(_candidate, max_size=14), min_size=1, max_size=6)


def _to_arrays(segments):
    seg, adv, ad, bid, quality, fraud = [], [], [], [], [], []
    for index, candidates in enumerate(segments):
        for a, d, b, q, f in candidates:
            seg.append(index)
            adv.append(a)
            ad.append(d)
            bid.append(b)
            quality.append(q)
            fraud.append(f)
    return (
        np.asarray(seg, dtype=np.int64),
        np.asarray(adv, dtype=np.int64),
        np.asarray(ad, dtype=np.int64),
        np.asarray(bid, dtype=np.float64),
        np.asarray(quality, dtype=np.float64),
        np.asarray(fraud, dtype=bool),
    )


def _assert_equivalent(segments, config):
    seg, adv, ad, bid, quality, fraud = _to_arrays(segments)
    result = run_auction_batch(
        seg, adv, ad, bid, quality, fraud, config, len(segments)
    )
    flat = [c for candidates in segments for c in candidates]
    cursor = 0
    for index, raw in enumerate(segments):
        candidates = [
            Candidate(a, d, MatchType.EXACT, b, q, None, f)
            for a, d, b, q, f in raw
        ]
        outcome = run_auction(candidates, config)
        assert int(result.n_shown[index]) == outcome.n_shown
        assert int(result.n_fraud_shown[index]) == outcome.n_fraud_labeled()
        for shown in outcome.shown:
            assert int(result.segment[cursor]) == index
            batch_cand = flat[result.candidate_index[cursor]]
            scalar_cand = shown.candidate
            assert batch_cand[0] == scalar_cand.advertiser_id
            assert batch_cand[1] == scalar_cand.ad_id
            assert int(result.position[cursor]) == shown.position
            assert bool(result.mainline[cursor]) == shown.mainline
            # Bit-equal, not approximately equal: the kernel applies the
            # same float operations as the scalar pricing path.
            assert result.price[cursor] == shown.price_per_click
            cursor += 1
    assert cursor == len(result)


class TestRandomizedEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(segments=_segments)
    def test_cap_one(self, segments):
        _assert_equivalent(segments, CONFIGS["cap1"])

    @settings(max_examples=200, deadline=None)
    @given(segments=_segments)
    def test_cap_three(self, segments):
        _assert_equivalent(segments, CONFIGS["cap3"])

    @settings(max_examples=100, deadline=None)
    @given(segments=_segments)
    def test_high_reserve_filters(self, segments):
        _assert_equivalent(segments, CONFIGS["high_reserve"])


class TestEdgeCases:
    def test_empty_batch(self):
        result = run_auction_batch(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=bool),
            CONFIGS["cap1"],
            4,
        )
        assert len(result) == 0
        assert result.n_shown.tolist() == [0, 0, 0, 0]
        assert result.n_fraud_shown.tolist() == [0, 0, 0, 0]

    def test_interleaved_empty_segments(self):
        segments = [
            [],
            [(1, 1, 2.0, 0.5, False)],
            [],
            [(2, 2, 1.0, 0.5, True), (3, 3, 0.5, 0.5, False)],
            [],
        ]
        _assert_equivalent(segments, CONFIGS["cap1"])

    def test_all_below_reserve(self):
        segments = [[(1, 1, 0.05, 0.004, False), (2, 2, 0.05, 0.004, True)]]
        _assert_equivalent(segments, CONFIGS["cap1"])
        seg, adv, ad, bid, quality, fraud = _to_arrays(segments)
        result = run_auction_batch(
            seg, adv, ad, bid, quality, fraud, CONFIGS["cap1"], 1
        )
        assert len(result) == 0
        assert result.n_shown.tolist() == [0]

    def test_per_advertiser_cap_keeps_best_ranked(self):
        # One advertiser floods the auction; only its `cap` best offers
        # survive and a competitor still makes the page.
        segments = [
            [
                (1, 10, 2.0, 0.5, False),
                (1, 11, 1.9, 0.5, False),
                (1, 12, 1.8, 0.5, False),
                (2, 20, 1.0, 0.5, False),
            ]
        ]
        _assert_equivalent(segments, CONFIGS["cap1"])
        seg, adv, ad, bid, quality, fraud = _to_arrays(segments)
        result = run_auction_batch(
            seg, adv, ad, bid, quality, fraud, CONFIGS["cap1"], 1
        )
        shown_ads = [segments[0][i][1] for i in result.candidate_index]
        assert shown_ads == [10, 20]

    def test_tie_break_by_advertiser_then_ad(self):
        # Identical rank scores: order must be (advertiser_id, ad_id).
        segments = [
            [
                (3, 1, 1.0, 0.5, False),
                (1, 9, 1.0, 0.5, False),
                (1, 2, 1.0, 0.5, False),
                (2, 5, 1.0, 0.5, False),
            ]
        ]
        _assert_equivalent(segments, CONFIGS["cap3"])
        seg, adv, ad, bid, quality, fraud = _to_arrays(segments)
        result = run_auction_batch(
            seg, adv, ad, bid, quality, fraud, CONFIGS["cap3"], 1
        )
        order = [(segments[0][i][0], segments[0][i][1]) for i in result.candidate_index]
        assert order == sorted(order)

    def test_reserve_floor_prices_last_ad(self):
        segments = [[(1, 1, 2.0, 0.2, False)]]
        seg, adv, ad, bid, quality, fraud = _to_arrays(segments)
        config = CONFIGS["cap1"]
        result = run_auction_batch(seg, adv, ad, bid, quality, fraud, config, 1)
        expected = config.reserve_score / 0.2 + config.price_increment
        assert result.price[0] == pytest.approx(expected)
        _assert_equivalent(segments, config)
