"""Tests for the simulation engine and its outputs."""

import numpy as np
import pytest

from repro import run_simulation, small_config
from repro.entities.enums import AdvertiserKind
from repro.timeline import Window


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = small_config(seed=99, days=30)
        a = run_simulation(config)
        b = run_simulation(config)
        assert len(a.accounts) == len(b.accounts)
        assert len(a.impressions) == len(b.impressions)
        np.testing.assert_array_equal(a.impressions.clicks, b.impressions.clicks)
        np.testing.assert_array_equal(
            a.impressions.advertiser_id, b.impressions.advertiser_id
        )

    def test_different_seed_differs(self):
        a = run_simulation(small_config(seed=1, days=30))
        b = run_simulation(small_config(seed=2, days=30))
        assert len(a.accounts) != len(b.accounts) or len(a.impressions) != len(
            b.impressions
        )


class TestResultConsistency(object):
    def test_account_ids_unique(self, sim_result):
        ids = [a.advertiser_id for a in sim_result.accounts]
        assert len(ids) == len(set(ids))

    def test_impression_advertisers_exist(self, sim_result):
        known = {a.advertiser_id for a in sim_result.accounts}
        assert set(np.unique(sim_result.impressions.advertiser_id)) <= known

    def test_impressions_within_study(self, sim_result):
        days = sim_result.impressions.day
        assert (days >= 0).all()
        assert (days <= sim_result.config.days).all()

    def test_no_impressions_after_shutdown(self, sim_result):
        table = sim_result.impressions
        for account in sim_result.accounts:
            if account.shutdown_time is None:
                continue
            rows = table.advertiser_id == account.advertiser_id
            if rows.any():
                assert table.day[rows].max() <= account.shutdown_time + 1.0

    def test_no_impressions_before_first_ad(self, sim_result):
        table = sim_result.impressions
        for account in sim_result.accounts[:200]:
            rows = table.advertiser_id == account.advertiser_id
            if rows.any():
                assert account.first_ad_time is not None
                assert table.day[rows].min() >= account.first_ad_time - 1.0

    def test_detection_records_match_accounts(self, sim_result):
        by_id = {a.advertiser_id: a for a in sim_result.accounts}
        for record in sim_result.detections:
            account = by_id[record.advertiser_id]
            assert account.shutdown_time == pytest.approx(record.time)
            assert account.shutdown_reason == record.stage

    def test_labeled_fraud_has_shutdown(self, sim_result):
        for account in sim_result.fraud_accounts():
            assert account.shutdown_time is not None
            assert account.shutdown_time <= sim_result.config.days

    def test_ground_truth_fraud_may_evade(self, sim_result):
        evaded = [
            a
            for a in sim_result.accounts
            if a.is_fraud_ground_truth and not a.labeled_fraud
        ]
        # Evasion is possible (labels come from detection, not truth).
        # All evaded accounts must have no shutdown.
        for account in evaded:
            assert account.shutdown_time is None

    def test_spend_equals_clicks_times_price(self, sim_result):
        table = sim_result.impressions
        np.testing.assert_allclose(
            table.spend, table.clicks * table.price, rtol=1e-9
        )

    def test_positions_within_slots(self, sim_result):
        config = sim_result.config.auction
        positions = sim_result.impressions.position
        assert positions.min() >= 1
        assert positions.max() <= config.total_slots

    def test_n_fraud_never_exceeds_n_shown(self, sim_result):
        table = sim_result.impressions
        assert (table.n_fraud_shown <= table.n_shown).all()

    def test_customer_records_roundtrip(self, sim_result):
        records = sim_result.customer_records()
        assert len(records) == len(sim_result.accounts)
        fraud_labels = sum(r.labeled_fraud for r in records)
        assert fraud_labels == len(sim_result.fraud_accounts())

    def test_account_lookup(self, sim_result):
        first = sim_result.accounts[0]
        assert sim_result.account(first.advertiser_id) is first


class TestPopulationShape(object):
    def test_fraud_share_in_band(self, sim_result):
        fraud = [a for a in sim_result.accounts if a.is_fraud_ground_truth]
        share = len(fraud) / len(sim_result.accounts)
        assert 0.25 < share < 0.65

    def test_prolific_minority(self, sim_result):
        fraud = [a for a in sim_result.accounts if a.is_fraud_ground_truth]
        prolific = [a for a in fraud if a.kind is AdvertiserKind.FRAUD_PROLIFIC]
        assert 0.0 < len(prolific) / len(fraud) < 0.2

    def test_fraud_lifetimes_short(self, sim_result):
        lifetimes = [
            a.shutdown_time - a.created_time
            for a in sim_result.fraud_accounts()
            if a.shutdown_time is not None
        ]
        assert np.median(lifetimes) < 3.0

    def test_most_legit_survive(self, sim_result):
        legit = [a for a in sim_result.accounts if not a.is_fraud_ground_truth]
        shutdown = [a for a in legit if a.shutdown_time is not None]
        assert len(shutdown) / len(legit) < 0.01

    def test_window_activity_exists(self, sim_result, sim_window):
        table = sim_result.impressions.in_window(sim_window.start, sim_window.end)
        assert len(table) > 0
        assert table.total_clicks() > 0
