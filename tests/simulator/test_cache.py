"""Tests for the in-process simulation cache."""

import gc
import weakref

import pytest

from repro import run_simulation, small_config
from repro.errors import ConfigError
from repro.simulator.cache import (
    DEFAULT_CACHE_CAPACITY,
    cached_simulation,
    clear_cache,
    seed_cache,
    set_cache_capacity,
)


class TestCache:
    def test_same_config_shares_result(self):
        config = small_config(seed=123, days=20)
        first = cached_simulation(config)
        second = cached_simulation(config)
        assert first is second

    def test_equal_configs_share(self):
        first = cached_simulation(small_config(seed=124, days=20))
        second = cached_simulation(small_config(seed=124, days=20))
        assert first is second

    def test_different_configs_distinct(self):
        a = cached_simulation(small_config(seed=125, days=20))
        b = cached_simulation(small_config(seed=126, days=20))
        assert a is not b

    def test_clear(self):
        config = small_config(seed=127, days=20)
        first = cached_simulation(config)
        clear_cache()
        second = cached_simulation(config)
        assert first is not second


@pytest.fixture()
def bounded_cache():
    """Isolate the LRU bound; restore the default afterwards."""
    clear_cache()
    yield
    clear_cache()
    set_cache_capacity(DEFAULT_CACHE_CAPACITY)


class TestBoundedLru:
    def test_eviction_actually_frees_entries(self, bounded_cache):
        set_cache_capacity(2)
        configs = [small_config(seed=200 + i, days=20) for i in range(3)]
        first = cached_simulation(configs[0])
        probe = weakref.ref(first)
        del first
        cached_simulation(configs[1])
        cached_simulation(configs[2])  # evicts the seed=200 entry
        gc.collect()
        assert probe() is None, "evicted result still referenced"

    def test_hit_refreshes_recency(self, bounded_cache):
        set_cache_capacity(2)
        configs = [small_config(seed=210 + i, days=20) for i in range(3)]
        oldest = cached_simulation(configs[0])
        cached_simulation(configs[1])
        assert cached_simulation(configs[0]) is oldest  # refresh
        cached_simulation(configs[2])  # evicts seed=211, not seed=210
        assert cached_simulation(configs[0]) is oldest

    def test_shrinking_capacity_evicts(self, bounded_cache):
        set_cache_capacity(3)
        configs = [small_config(seed=220 + i, days=20) for i in range(3)]
        kept = [cached_simulation(c) for c in configs]
        probe = weakref.ref(kept[0])
        del kept
        set_cache_capacity(1)
        gc.collect()
        assert probe() is None

    def test_seed_cache_short_circuits_simulation(self, bounded_cache):
        config = small_config(seed=230, days=20)
        result = run_simulation(config)
        seed_cache(config, result)
        assert cached_simulation(config) is result

    def test_capacity_must_be_positive(self, bounded_cache):
        with pytest.raises(ConfigError):
            set_cache_capacity(0)

    def test_env_capacity_validation(self, monkeypatch):
        from repro.simulator import cache

        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "4")
        assert cache._initial_capacity() == 4
        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "zero")
        with pytest.raises(ConfigError):
            cache._initial_capacity()
        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "0")
        with pytest.raises(ConfigError):
            cache._initial_capacity()

    def test_malformed_env_does_not_break_import(self, monkeypatch):
        """Regression: a bad REPRO_SIM_CACHE_SIZE used to raise at
        import time (module-level ``_initial_capacity()`` call), so any
        ``import repro.simulator.cache`` -- e.g. just running the test
        suite -- crashed before reaching code that could report it.
        The value must be validated lazily, at first cache use.
        """
        import importlib

        from repro.simulator import cache

        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "not-a-number")
        try:
            module = importlib.reload(cache)  # must not raise
            with pytest.raises(ConfigError, match="must be an integer"):
                module.seed_cache(small_config(seed=240, days=20), object())
            # An explicit runtime capacity overrides the bad env value.
            module.set_cache_capacity(2)
            module.clear_cache()
        finally:
            monkeypatch.delenv("REPRO_SIM_CACHE_SIZE", raising=False)
            importlib.reload(cache)
