"""Tests for the in-process simulation cache."""

from repro import small_config
from repro.simulator.cache import cached_simulation, clear_cache


class TestCache:
    def test_same_config_shares_result(self):
        config = small_config(seed=123, days=20)
        first = cached_simulation(config)
        second = cached_simulation(config)
        assert first is second

    def test_equal_configs_share(self):
        first = cached_simulation(small_config(seed=124, days=20))
        second = cached_simulation(small_config(seed=124, days=20))
        assert first is second

    def test_different_configs_distinct(self):
        a = cached_simulation(small_config(seed=125, days=20))
        b = cached_simulation(small_config(seed=126, days=20))
        assert a is not b

    def test_clear(self):
        config = small_config(seed=127, days=20)
        first = cached_simulation(config)
        clear_cache()
        second = cached_simulation(config)
        assert first is not second
