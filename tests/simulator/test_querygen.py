"""Tests for query generation and the pre-computed match tables."""

import numpy as np
import pytest

from repro.config import QueryConfig
from repro.entities.enums import MatchType
from repro.matching.matcher import matches
from repro.records.codes import MATCH_CODES
from repro.simulator.querygen import CellSampler, MatchTable, QuerySampler, match_table
from repro.taxonomy.keywords import keyword_pool
from repro.taxonomy.verticals import VERTICALS


class TestMatchTable:
    def test_agrees_with_matcher(self):
        """The table must reproduce the real matcher on pool pairs."""
        name = "weightloss"
        pool = keyword_pool(name)
        table = match_table(name)
        for kw_index, keyword in enumerate(pool):
            for seed_index, seed in enumerate(pool):
                assert table.exact[kw_index, seed_index] == matches(
                    keyword, MatchType.EXACT, seed
                )
                assert table.phrase[kw_index, seed_index] == matches(
                    keyword, MatchType.PHRASE, seed
                )
                assert table.broad[kw_index, seed_index] == matches(
                    keyword, MatchType.BROAD, seed
                )

    def test_diagonal_always_eligible(self):
        table = match_table("downloads")
        size = len(keyword_pool("downloads"))
        for index in range(size):
            assert table.exact[index, index]
            assert table.phrase[index, index]
            assert table.broad[index, index]

    def test_exact_requires_plain_query(self):
        table = match_table("downloads")
        assert table.eligible(0, MATCH_CODES[MatchType.EXACT], 0, False, False)
        assert not table.eligible(0, MATCH_CODES[MatchType.EXACT], 0, True, False)
        assert not table.eligible(0, MATCH_CODES[MatchType.EXACT], 0, True, True)

    def test_phrase_survives_decoration_not_shuffle(self):
        table = match_table("downloads")
        assert table.eligible(0, MATCH_CODES[MatchType.PHRASE], 0, True, False)
        assert not table.eligible(0, MATCH_CODES[MatchType.PHRASE], 0, True, True)

    def test_broad_survives_shuffle(self):
        table = match_table("downloads")
        assert table.eligible(0, MATCH_CODES[MatchType.BROAD], 0, True, True)

    def test_eligible_pairs_consistent(self):
        table = match_table("luxury")
        pairs = table.eligible_pairs(0, decorated=False, shuffled=False)
        for kw_index, code in pairs:
            assert table.eligible(kw_index, code, 0, False, False)
        # Shuffled queries only produce broad pairs.
        for _, code in table.eligible_pairs(0, decorated=True, shuffled=True):
            assert code == MATCH_CODES[MatchType.BROAD]


class TestCellSampler:
    def test_split_roundtrip(self):
        cells = CellSampler()
        for cell_id in (0, 5, cells.n_cells - 1):
            vertical, country = cells.split(cell_id)
            assert cells.cell_of(vertical, country) == cell_id

    def test_sampling_follows_volume(self, rng):
        cells = CellSampler()
        samples = cells.sample(rng, 20_000)
        counts = np.bincount(samples, minlength=cells.n_cells)
        probs = cells.cell_probabilities()
        top_expected = int(np.argmax(probs))
        assert counts[top_expected] == counts.max()


class TestQuerySampler:
    def test_day_sample_size(self, rng):
        sampler = QuerySampler(QueryConfig(auctions_per_day=37))
        queries = sampler.sample_day(rng)
        assert len(queries) == 37

    def test_query_fields_valid(self, rng):
        sampler = QuerySampler(QueryConfig(auctions_per_day=500))
        for query in sampler.sample_day(rng):
            assert 0 <= query.vertical < len(VERTICALS)
            pool = keyword_pool(VERTICALS[query.vertical].name)
            assert 0 <= query.seed_index < len(pool)
            assert query.weight > 0
            if query.shuffled:
                assert query.decorated

    def test_decoration_rate(self, rng):
        config = QueryConfig(auctions_per_day=4000, decorate_prob=0.4)
        sampler = QuerySampler(config)
        queries = sampler.sample_day(rng)
        rate = np.mean([q.decorated for q in queries])
        assert rate == pytest.approx(0.4, abs=0.04)

    def test_no_decoration_when_disabled(self, rng):
        config = QueryConfig(decorate_prob=0.0)
        sampler = QuerySampler(config)
        assert not any(q.decorated for q in sampler.sample_day(rng))
