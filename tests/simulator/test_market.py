"""Tests for the vectorized market index."""

import numpy as np
import pytest

from repro.behavior.factory import IdAllocator, materialize_account
from repro.behavior.legitimate import sample_legitimate_profile
from repro.config import default_config
from repro.entities.advertiser import Advertiser
from repro.simulator.market import MarketIndex
from repro.taxonomy.geography import country as country_info

CONFIG = default_config()


def build_accounts(n=6, seed=13, first_ad=2.0, end=50.0):
    rng = np.random.Generator(np.random.PCG64(seed))
    ids = IdAllocator()
    accounts = []
    for index in range(n):
        profile = sample_legitimate_profile(CONFIG, rng)
        info = country_info(profile.country)
        advertiser = Advertiser(
            advertiser_id=index + 1,
            kind=profile.kind,
            created_time=1.0,
            country=profile.country,
            language=info.language,
            currency=info.currency,
            activity_scale=profile.activity_scale,
            quality=profile.quality,
        )
        account = materialize_account(
            advertiser, profile, first_ad, 100.0, CONFIG, ids, rng
        )
        account.trim(end)
        account.activity_end = end
        accounts.append(account)
    return accounts


@pytest.fixture(scope="module")
def market():
    return MarketIndex(build_accounts())


class TestMarketIndex:
    def test_arrays_aligned(self, market):
        n = market.n_offers
        for name in ("cell", "kw", "match", "max_bid", "quality", "adv_row"):
            assert len(getattr(market, name)) == n

    def test_live_mask_respects_activity_window(self, market):
        rng = np.random.Generator(np.random.PCG64(0))
        # Before first ad: nothing live.
        assert not market.live_mask(0.5, rng).any()
        # After activity end: nothing live.
        assert not market.live_mask(60.0, rng).any()

    def test_live_mask_account_level(self):
        accounts = build_accounts(n=3)
        # Force full participation so liveness is deterministic.
        market = MarketIndex(accounts)
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        live = market.live_mask(10.0, rng)
        active_from = market.active_from
        assert (live == (active_from <= 10.0)).all()

    def test_zero_participation_nothing_live(self):
        market = MarketIndex(build_accounts(n=3))
        market.participation[:] = 0.0
        rng = np.random.Generator(np.random.PCG64(0))
        assert not market.live_mask(10.0, rng).any()

    def test_day_buckets_partition_live_offers(self):
        market = MarketIndex(build_accounts(n=5))
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        buckets = market.day_buckets(10.0, rng)
        total = sum(len(v) for v in buckets.buckets.values())
        live = int(market.live_mask(10.0, np.random.Generator(np.random.PCG64(0))).sum())
        assert total == live

    def test_bucket_members_homogeneous(self):
        market = MarketIndex(build_accounts(n=5))
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        buckets = market.day_buckets(10.0, rng)
        for rows in buckets.buckets.values():
            keys = {
                (int(market.cell[i]), int(market.kw[i]), int(market.match[i]))
                for i in rows
            }
            assert len(keys) == 1

    def test_lookup_matches_buckets(self):
        market = MarketIndex(build_accounts(n=5))
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        buckets = market.day_buckets(10.0, rng)
        for rows in buckets.buckets.values():
            i = rows[0]
            found = buckets.lookup(
                int(market.cell[i]), int(market.kw[i]), int(market.match[i])
            )
            assert found is not None
            assert set(found.tolist()) == set(rows.tolist())

    def test_empty_market(self):
        market = MarketIndex([])
        rng = np.random.Generator(np.random.PCG64(0))
        assert market.n_offers == 0
        assert not market.live_mask(1.0, rng).any()
        assert market.day_buckets(1.0, rng).buckets == {}

    def test_gather_matches_lookup(self):
        market = MarketIndex(build_accounts(n=5))
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        buckets = market.day_buckets(10.0, rng)
        # Every real key, one missing key, in shuffled order.
        keys = np.concatenate([buckets.keys, [buckets.keys.max() + 1]])
        shuffle = np.random.Generator(np.random.PCG64(1)).permutation(len(keys))
        keys = keys[shuffle]
        rows, key_index = buckets.gather(keys)
        assert len(rows) == len(key_index)
        assert len(rows) == len(buckets.rows)  # missing key contributes nothing
        for position in np.unique(key_index):
            expected = buckets.buckets[int(keys[position])]
            got = rows[key_index == position]
            np.testing.assert_array_equal(got, expected)

    def test_gather_empty_inputs(self):
        market = MarketIndex(build_accounts(n=3))
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        buckets = market.day_buckets(10.0, rng)
        rows, key_index = buckets.gather(np.zeros(0, dtype=np.int64))
        assert rows.size == 0 and key_index.size == 0
        empty = market.day_buckets(60.0, rng)  # after activity end
        rows, key_index = empty.gather(np.array([1, 2, 3], dtype=np.int64))
        assert rows.size == 0 and key_index.size == 0

    def test_gather_all_misses(self):
        market = MarketIndex(build_accounts(n=3))
        market.participation[:] = 1.0
        rng = np.random.Generator(np.random.PCG64(0))
        buckets = market.day_buckets(10.0, rng)
        missing = np.array(
            [buckets.keys.max() + 1, buckets.keys.max() + 2], dtype=np.int64
        )
        rows, key_index = buckets.gather(missing)
        assert rows.size == 0 and key_index.size == 0
