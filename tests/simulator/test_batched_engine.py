"""End-to-end regression: batched Phase 3 vs the scalar oracle.

The vectorized auction loop is designed to replay the scalar loop's RNG
draws in the same order on the same streams, so a same-seed simulation
must produce an identical impression table — not merely statistically
close.  These tests pin that property at engine scale (the kernel-level
differential tests live in ``tests/auction/test_batch_equivalence.py``).
"""

import numpy as np
import pytest

from repro.config import small_config
from repro.records.impressions import ImpressionBuilder, ImpressionTable
from repro.simulator.engine import SimulationEngine
from repro.simulator.market import MarketIndex


def _phase3_table(config, scalar: bool) -> ImpressionTable:
    engine = SimulationEngine(config)
    accounts, _ = engine.generate_population()
    market = MarketIndex(accounts)
    builder = ImpressionBuilder()
    if scalar:
        engine.run_auctions_scalar(market, builder)
    else:
        engine.run_auctions(market, builder)
    return builder.build()


@pytest.fixture(scope="module")
def tables():
    config = small_config(seed=31, days=90)
    return _phase3_table(config, scalar=False), _phase3_table(config, scalar=True)


class TestBatchedEngineRegression:
    def test_tables_bit_identical(self, tables):
        batched, scalar = tables
        assert len(batched) == len(scalar)
        for name in ImpressionTable.field_names():
            left = getattr(batched, name)
            right = getattr(scalar, name)
            assert left.dtype == right.dtype, name
            np.testing.assert_array_equal(left, right, err_msg=name)

    def test_per_advertiser_aggregates_match(self, tables):
        """The satellite guarantee: per-advertiser totals line up.

        Subsumed by bit-identity but asserted separately so a future
        intentional RNG-order change (which would break bit-identity)
        still has a meaningful, noise-tolerant aggregate check to keep.
        """
        batched, scalar = tables
        for table in tables:
            assert len(table) > 0
        advertisers = np.union1d(
            np.unique(batched.advertiser_id), np.unique(scalar.advertiser_id)
        )
        for name in ("weight", "spend", "clicks"):
            left = np.zeros(len(advertisers))
            right = np.zeros(len(advertisers))
            left_index = np.searchsorted(advertisers, batched.advertiser_id)
            right_index = np.searchsorted(advertisers, scalar.advertiser_id)
            np.add.at(left, left_index, getattr(batched, name))
            np.add.at(right, right_index, getattr(scalar, name))
            np.testing.assert_allclose(left, right, rtol=1e-9, err_msg=name)

    def test_full_run_matches_phase_decomposition(self):
        """`run_simulation` and the manual phase pipeline agree."""
        from repro import run_simulation

        config = small_config(seed=31, days=90)
        result = run_simulation(config)
        batched = _phase3_table(config, scalar=False)
        np.testing.assert_array_equal(result.impressions.clicks, batched.clicks)
        np.testing.assert_array_equal(result.impressions.spend, batched.spend)

    def test_validation_suite_passes_on_batched_output(self):
        """`python -m repro.validation --small` stays green."""
        from repro.validation.__main__ import main

        assert main(["--small"]) == 0
