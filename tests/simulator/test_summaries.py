"""Tests for the engine's per-account summaries (bid statistics etc.)."""

import numpy as np
import pytest

from repro import run_simulation, small_config
from repro.records.codes import MATCH_CODES
from repro.entities.enums import MatchType


@pytest.fixture(scope="module")
def result_with_entities():
    return run_simulation(small_config(seed=55, days=40), keep_entities=True)


class TestBidStatistics:
    def test_counts_match_entities(self, result_with_entities):
        result = result_with_entities
        by_id = {a.advertiser_id: a for a in result.advertisers}
        checked = 0
        for summary in result.accounts:
            advertiser = by_id[summary.advertiser_id]
            bids = list(advertiser.all_bids())
            if not bids:
                continue
            checked += 1
            expected = np.zeros(3)
            expected_sum = np.zeros(3)
            for bid in bids:
                code = MATCH_CODES[bid.match_type]
                expected[code] += 1
                expected_sum[code] += bid.max_bid
            np.testing.assert_array_equal(summary.bid_count_by_match, expected)
            np.testing.assert_allclose(summary.bid_sum_by_match, expected_sum)
            if checked > 50:
                break
        assert checked > 10

    def test_above_default_consistent(self, result_with_entities):
        result = result_with_entities
        default = result.config.auction.default_max_bid
        by_id = {a.advertiser_id: a for a in result.advertisers}
        for summary in result.accounts[:200]:
            advertiser = by_id[summary.advertiser_id]
            expected = np.zeros(3)
            for bid in advertiser.all_bids():
                if bid.max_bid > default * 1.0001:
                    expected[MATCH_CODES[bid.match_type]] += 1
            np.testing.assert_array_equal(
                summary.bid_above_default_by_match, expected
            )

    def test_keyword_counts_match(self, result_with_entities):
        result = result_with_entities
        by_id = {a.advertiser_id: a for a in result.advertisers}
        for summary in result.accounts[:200]:
            advertiser = by_id[summary.advertiser_id]
            assert summary.n_keywords == sum(1 for _ in advertiser.all_bids())
            assert summary.n_ads == sum(1 for _ in advertiser.all_ads())

    def test_domains_counted(self, result_with_entities):
        result = result_with_entities
        by_id = {a.advertiser_id: a for a in result.advertisers}
        for summary in result.accounts[:200]:
            advertiser = by_id[summary.advertiser_id]
            domains = {ad.destination_domain for ad in advertiser.all_ads()}
            assert summary.n_domains == len(domains)


class TestKeepEntities:
    def test_entities_retained_only_on_request(self):
        config = small_config(seed=56, days=20)
        without = run_simulation(config)
        assert without.advertisers == []

    def test_entities_align_with_accounts(self, result_with_entities):
        result = result_with_entities
        assert len(result.advertisers) == len(result.accounts)
        for advertiser, summary in zip(result.advertisers, result.accounts):
            assert advertiser.advertiser_id == summary.advertiser_id
