"""Tests for the account arrival process."""

import numpy as np

from repro.config import PopulationConfig
from repro.simulator.registration import FraudShareSchedule, sample_daily_counts


class TestSchedule:
    def test_ramp(self, rng):
        config = PopulationConfig(
            fraud_share_start=0.3, fraud_share_end=0.6, fraud_share_noise=0.0001
        )
        schedule = FraudShareSchedule(config, 100, rng)
        assert abs(schedule.share(0) - 0.3) < 0.01
        assert abs(schedule.share(99) - 0.597) < 0.02
        assert schedule.share(50) > schedule.share(0)

    def test_bounds(self, rng):
        config = PopulationConfig(
            fraud_share_start=0.05, fraud_share_end=0.9, fraud_share_noise=0.4
        )
        schedule = FraudShareSchedule(config, 50, rng)
        for day in range(50):
            assert 0.02 <= schedule.share(day) <= 0.95

    def test_noise_constant_within_week(self, rng):
        config = PopulationConfig(fraud_share_noise=0.1)
        schedule = FraudShareSchedule(config, 100, rng)
        # Within one week only the linear ramp moves (small), while
        # noise re-draws across week boundaries can be large.
        assert abs(schedule.share(7) - schedule.share(13)) < 0.02


class TestDailyCounts:
    def test_split_sums(self, rng):
        config = PopulationConfig(registrations_per_day=50.0)
        schedule = FraudShareSchedule(config, 10, rng)
        fraud, nonfraud = sample_daily_counts(config, schedule, 0, rng)
        assert fraud >= 0 and nonfraud >= 0

    def test_fraud_share_matches_schedule(self, rng):
        config = PopulationConfig(
            registrations_per_day=200.0,
            fraud_share_start=0.5,
            fraud_share_end=0.5,
            fraud_share_noise=0.0001,
        )
        schedule = FraudShareSchedule(config, 10, rng)
        totals = np.zeros(2)
        for _ in range(200):
            fraud, nonfraud = sample_daily_counts(config, schedule, 3, rng)
            totals += (fraud, fraud + nonfraud)
        assert abs(totals[0] / totals[1] - 0.5) < 0.02
