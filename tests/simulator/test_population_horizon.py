"""Whole-horizon Phase 1 vs the day-loop oracle, and the plan arrays.

:meth:`SimulationEngine.generate_population` now runs a two-pass
whole-horizon sweep (draws, then build).  It must reproduce the
retained PR-3 day loop (:meth:`generate_population_dayloop`) exactly:
every summary, every entity, and the bit state of all five named RNG
streams afterwards.  The draws pass also records a columnar
:class:`~repro.behavior.horizon.PopulationPlan`; its slices and
per-day aggregates must agree with the generated population.
"""

import numpy as np
import pytest

from repro.behavior.horizon import PlanRecorder, PopulationPlan
from repro.config import small_config
from repro.simulator.engine import RNG_STREAMS, SimulationEngine


def _generate(path: str):
    engine = SimulationEngine(small_config(seed=123, days=20))
    if path == "horizon":
        accounts, summaries = engine.generate_population()
    else:
        accounts, summaries = engine.generate_population_dayloop()
    return engine, accounts, summaries, engine.rng_state()


@pytest.fixture(scope="module")
def populations():
    return _generate("horizon"), _generate("dayloop")


class TestHorizonEquivalence:
    def test_rng_stream_states_identical(self, populations):
        (_, _, _, horizon), (_, _, _, dayloop) = populations
        assert set(horizon) == set(RNG_STREAMS)
        assert horizon == dayloop

    def test_summaries_identical(self, populations):
        (_, _, horizon, _), (_, _, dayloop, _) = populations
        assert len(horizon) == len(dayloop)
        for mine, theirs in zip(horizon, dayloop):
            for name in mine.__dataclass_fields__:
                a = getattr(mine, name)
                b = getattr(theirs, name)
                if isinstance(a, np.ndarray):
                    assert a.dtype == b.dtype, name
                    np.testing.assert_array_equal(a, b, err_msg=name)
                else:
                    assert a == b, name

    def test_entities_identical(self, populations):
        (_, horizon, _, _), (_, dayloop, _, _) = populations
        assert len(horizon) == len(dayloop)
        for mine, theirs in zip(horizon, dayloop):
            assert mine.activity_end == theirs.activity_end
            assert mine.ad_mod_times == theirs.ad_mod_times
            assert mine.kw_mod_times == theirs.kw_mod_times
            assert [
                (o.vertical, o.country, o.ad.ad_id, o.kw_index, o.quality,
                 o.click_quality, o.active_from)
                for o in mine.offers
            ] == [
                (o.vertical, o.country, o.ad.ad_id, o.kw_index, o.quality,
                 o.click_quality, o.active_from)
                for o in theirs.offers
            ]

    def test_no_account_left_pending(self, populations):
        (_, horizon, _, _), _ = populations
        assert all(account.pending is None for account in horizon)


class TestPopulationPlan:
    def test_plan_populated_only_on_horizon_path(self, populations):
        (engine_h, accounts, _, _), (engine_d, _, _, _) = populations
        assert isinstance(engine_h.population_plan, PopulationPlan)
        assert len(engine_h.population_plan) == len(accounts)
        assert engine_d.population_plan is None

    def test_plan_matches_summaries(self, populations):
        (engine, accounts, summaries, _), _ = populations
        plan = engine.population_plan
        for row, (account, summary) in enumerate(zip(accounts, summaries)):
            assert plan.created_time[row] == summary.created_time
            assert plan.activity_end[row] == summary.activity_end
            assert bool(plan.is_fraud[row]) == summary.is_fraud_ground_truth
            assert plan.registration_day[row] == int(summary.created_time)
            if summary.shutdown_time is None:
                assert np.isnan(plan.shutdown_time[row])
            else:
                assert plan.shutdown_time[row] == summary.shutdown_time
            # Materialized accounts are exactly those that built offers
            # or ads; empties kept activity_end == created_time.
            if not plan.materialized[row]:
                assert account.activity_end == account.advertiser.created_time

    def test_registration_day_nondecreasing(self, populations):
        (engine, _, _, _), _ = populations
        days = engine.population_plan.registration_day
        assert np.all(np.diff(days) >= 0)

    def test_day_slice_partitions_population(self, populations):
        (engine, _, summaries, _), _ = populations
        plan = engine.population_plan
        covered = 0
        for day in range(plan.days):
            sl = plan.day_slice(day)
            covered += sl.stop - sl.start
            for row in range(sl.start, sl.stop):
                assert int(summaries[row].created_time) == day
        assert covered == len(plan)

    def test_registrations_per_day_matches_slices(self, populations):
        (engine, _, _, _), _ = populations
        plan = engine.population_plan
        per_day = plan.registrations_per_day()
        assert per_day.sum() == len(plan)
        for day in range(plan.days):
            sl = plan.day_slice(day)
            assert per_day[day] == sl.stop - sl.start

    def test_churn_and_shutdown_aggregates(self, populations):
        (engine, _, summaries, _), _ = populations
        plan = engine.population_plan
        churn = plan.churn_per_day()
        expected_churn = sum(
            1 for s in summaries if s.activity_end < float(plan.days)
        )
        assert churn.sum() == expected_churn
        shutdowns = plan.shutdowns_per_day()
        expected_shut = sum(
            1
            for s in summaries
            if s.shutdown_time is not None
            and s.shutdown_time < float(plan.days)
        )
        assert shutdowns.sum() == expected_shut

    def test_lifetime_is_end_minus_created(self, populations):
        (engine, _, _, _), _ = populations
        plan = engine.population_plan
        np.testing.assert_array_equal(
            plan.lifetime, plan.activity_end - plan.created_time
        )


def test_recorder_round_trip():
    recorder = PlanRecorder(days=3)
    recorder.record(0, 0.25, 3.0, False, True, None)
    recorder.record(2, 2.5, 2.75, True, True, 2.75)
    assert len(recorder) == 2
    plan = recorder.build()
    assert plan.registration_day.dtype == np.int64
    assert plan.created_time.dtype == np.float64
    assert plan.is_fraud.dtype == np.bool_
    assert np.isnan(plan.shutdown_time[0])
    assert plan.shutdown_time[1] == 2.75
    assert plan.day_slice(1) == slice(1, 1)
    np.testing.assert_array_equal(plan.registrations_per_day(), [1, 0, 1])
