"""End-to-end regression: batched Phase 1 vs the scalar oracle.

:meth:`SimulationEngine.generate_population` (the batched materializer)
must reproduce :meth:`SimulationEngine.generate_population_scalar`
exactly on a same-seed engine: every account summary, every surviving
entity, and -- the strongest invariant -- the bit state of all five
named RNG streams after generation, which any skipped or reordered
draw would break.
"""

import numpy as np
import pytest

from repro.config import small_config
from repro.simulator.engine import RNG_STREAMS, SimulationEngine


def _generate(scalar: bool):
    engine = SimulationEngine(small_config(seed=123, days=20))
    if scalar:
        accounts, summaries = engine.generate_population_scalar()
    else:
        accounts, summaries = engine.generate_population()
    return accounts, summaries, engine.rng_state()


@pytest.fixture(scope="module")
def populations():
    return _generate(scalar=False), _generate(scalar=True)


class TestPopulationEquivalence:
    def test_rng_stream_states_identical(self, populations):
        (_, _, batched), (_, _, scalar) = populations
        assert set(batched) == set(RNG_STREAMS)
        assert batched == scalar

    def test_summaries_identical(self, populations):
        (_, batched, _), (_, scalar, _) = populations
        assert len(batched) == len(scalar)
        for mine, theirs in zip(batched, scalar):
            for name in mine.__dataclass_fields__:
                a = getattr(mine, name)
                b = getattr(theirs, name)
                if isinstance(a, np.ndarray):
                    assert a.dtype == b.dtype, name
                    np.testing.assert_array_equal(a, b, err_msg=name)
                else:
                    assert a == b, name

    def test_entities_identical(self, populations):
        (batched, _, _), (scalar, _, _) = populations
        assert len(batched) == len(scalar)
        for mine, theirs in zip(batched, scalar):
            assert mine.activity_end == theirs.activity_end
            assert mine.ad_mod_times == theirs.ad_mod_times
            assert mine.kw_mod_times == theirs.kw_mod_times
            mine_campaigns = mine.advertiser.campaigns
            theirs_campaigns = theirs.advertiser.campaigns
            assert len(mine_campaigns) == len(theirs_campaigns)
            for got, want in zip(mine_campaigns, theirs_campaigns):
                assert [
                    (
                        a.ad_id,
                        a.copy,
                        a.destination_domain,
                        a.created_day,
                        a.engagement,
                        a.modified_count,
                    )
                    for a in got.ads
                ] == [
                    (
                        a.ad_id,
                        a.copy,
                        a.destination_domain,
                        a.created_day,
                        a.engagement,
                        a.modified_count,
                    )
                    for a in want.ads
                ]
                assert [
                    (b.keyword, b.match_type, b.max_bid, b.created_day, b.modified_count)
                    for b in got.bids
                ] == [
                    (b.keyword, b.match_type, b.max_bid, b.created_day, b.modified_count)
                    for b in want.bids
                ]
            assert [
                (o.vertical, o.country, o.ad.ad_id, o.kw_index, o.quality,
                 o.click_quality, o.active_from)
                for o in mine.offers
            ] == [
                (o.vertical, o.country, o.ad.ad_id, o.kw_index, o.quality,
                 o.click_quality, o.active_from)
                for o in theirs.offers
            ]

    def test_no_account_left_pending(self, populations):
        """Every lazy account must have been finalized by its trim."""
        (batched, _, _), _ = populations
        assert all(account.pending is None for account in batched)
