"""Tests for the simulation calendar."""

import pytest

from repro.timeline import (
    DAYS_PER_MONTH,
    DAYS_PER_YEAR,
    TOTAL_DAYS,
    Window,
    day_to_month,
    day_to_week,
    day_to_year,
    month_label,
    month_start,
    named_windows,
    quarter_window,
)


class TestWindow:
    def test_length(self):
        assert Window(3.0, 10.0).length == 7.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            Window(5.0, 5.0)
        with pytest.raises(ValueError):
            Window(5.0, 4.0)

    def test_contains_half_open(self):
        window = Window(10.0, 20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert not window.contains(9.999)

    def test_overlaps(self):
        window = Window(10.0, 20.0)
        assert window.overlaps(0.0, 10.5)
        assert window.overlaps(19.0, 30.0)
        assert window.overlaps(12.0, 13.0)
        assert not window.overlaps(0.0, 10.0)
        assert not window.overlaps(20.0, 25.0)

    def test_clip(self):
        window = Window(10.0, 20.0)
        assert window.clip(0.0, 30.0) == 10.0
        assert window.clip(15.0, 18.0) == 3.0
        assert window.clip(0.0, 5.0) == 0.0
        assert window.clip(25.0, 30.0) == 0.0


class TestCalendar:
    def test_day_to_week(self):
        assert day_to_week(0.0) == 0
        assert day_to_week(6.99) == 0
        assert day_to_week(7.0) == 1

    def test_day_to_month_boundaries(self):
        assert day_to_month(0.0) == 0
        assert day_to_month(DAYS_PER_MONTH) == 1
        assert day_to_month(DAYS_PER_YEAR) == 12
        # Clamped at the final month.
        assert day_to_month(TOTAL_DAYS + 100) == 23

    def test_day_to_year(self):
        assert day_to_year(0.0) == 0
        assert day_to_year(DAYS_PER_YEAR - 0.5) == 0
        assert day_to_year(DAYS_PER_YEAR) == 1
        assert day_to_year(TOTAL_DAYS + 5) == 1

    def test_month_labels(self):
        assert month_label(0) == "1/Y1"
        assert month_label(11) == "12/Y1"
        assert month_label(12) == "1/Y2"
        assert month_label(23) == "12/Y2"

    def test_month_start_roundtrip(self):
        for month in range(24):
            assert day_to_month(month_start(month) + 0.01) == month

    def test_quarter_window(self):
        q = quarter_window(1, 2)
        assert q.start == pytest.approx(DAYS_PER_YEAR / 4)
        assert q.length == pytest.approx(DAYS_PER_YEAR / 4)
        assert q.label == "Y1Q2"
        q2 = quarter_window(2, 1)
        assert q2.start == pytest.approx(DAYS_PER_YEAR)

    def test_quarter_window_validation(self):
        with pytest.raises(ValueError):
            quarter_window(3, 1)
        with pytest.raises(ValueError):
            quarter_window(1, 0)

    def test_named_windows_within_study(self):
        for window in named_windows().values():
            assert 0 <= window.start < window.end <= TOTAL_DAYS

    def test_named_windows_labels(self):
        names = set(named_windows())
        assert names == {
            "Q2 Year 1",
            "Oct. Year 1",
            "Q1 Year 2",
            "Apr. Year 2",
            "Oct. Year 2",
        }
