"""Integration tests: the paper's qualitative claims must hold on a
small simulation.

These are shape checks, not absolute-number checks: the substrate is a
synthetic marketplace, so we assert orderings, rough factors and regime
changes -- the properties the paper's figures and tables communicate.
"""

import numpy as np
import pytest

from repro.analysis import (
    CompetitionAnalyzer,
    SubsetBuilder,
    fraud_registration_share,
    fraud_lifetimes,
    impression_rates,
    preads_shutdown_share,
    top_share,
)
from repro.analysis.aggregates import aggregate_by_advertiser


@pytest.fixture(scope="module")
def subsets(sim_result, sim_window):
    return SubsetBuilder(sim_result, sim_window, target_size=400).build_many()


class TestSection4Scale:
    def test_fraud_registration_share_large(self, sim_result):
        """Sec 4.1: more than a third of registrations are fraudulent."""
        series = fraud_registration_share(sim_result)
        populated = series.fraud_share[series.registrations > 10]
        assert populated.mean() > 0.30

    def test_preads_shutdowns_about_a_third(self, sim_result):
        """Sec 4.1: 35% of shutdowns happen before a single ad shows."""
        assert 0.2 < preads_shutdown_share(sim_result) < 0.5

    def test_median_fraud_lifetime_under_a_day(self, sim_result):
        """Sec 4.1: the median fraud account survives <1 day."""
        curve = fraud_lifetimes(sim_result)["Year 1 (account)"]
        assert curve.median < 1.5

    def test_fraud_small_share_of_marketplace(self, sim_result):
        """Sec 6: well less than ~5% of impressions involve fraud."""
        table = sim_result.impressions
        fraud_weight = table.weight[table.fraud_labeled].sum()
        assert fraud_weight / table.weight.sum() < 0.08

    def test_fraud_clicks_concentrated(self, sim_result, sim_window):
        """Sec 4.2: top 10% of fraud advertisers take most clicks."""
        window_table = sim_result.impressions.in_window(
            sim_window.start, sim_window.end
        )
        agg = aggregate_by_advertiser(window_table, window_table.fraud_labeled)
        if len(agg) >= 10 and agg.clicks.sum() > 0:
            assert top_share(agg.clicks, 0.1) > 0.4


class TestSection5Behavior:
    def test_fraud_rates_faster(self, sim_result, sim_window):
        """Sec 5.1 / Figure 5: fraud impression rates exceed non-fraud."""
        rates = impression_rates(sim_result, sim_window)
        assert rates.fraud.median > 1.5 * rates.nonfraud.median

    def test_fraud_footprint_order_of_magnitude_smaller(self, subsets):
        """Sec 5.2 / Figure 7: fraud keeps far fewer ads and keywords."""
        fraud_kws = np.median(
            [a.n_keywords for a in subsets["F with clicks"].accounts]
        )
        nonfraud_kws = np.median(
            [a.n_keywords for a in subsets["NF with clicks"].accounts]
        )
        assert nonfraud_kws > 5 * max(fraud_kws, 1)

    def test_fraud_skews_away_from_exact(self, subsets):
        """Sec 5.3: "60% of fraudulent advertisers do not have even a
        single exact bid (compared to about 50% of legitimate
        advertisers)"."""
        def zero_exact_share(subset):
            eligible = [
                a for a in subset.accounts if a.bid_count_by_match.sum() > 0
            ]
            if not eligible:
                return np.nan
            return np.mean(
                [a.bid_count_by_match[0] == 0 for a in eligible]
            )

        fraud_zero = zero_exact_share(subsets["Fraud"])
        nonfraud_zero = zero_exact_share(subsets["Nonfraud"])
        assert fraud_zero > nonfraud_zero
        assert 0.45 < fraud_zero < 0.75
        assert 0.35 < nonfraud_zero < 0.65

    def test_fraud_phrase_heavier(self, subsets):
        """Sec 5.3: the median fraudulent advertiser leans on phrase
        matching far more than legitimate advertisers do."""
        def phrase_share(subset):
            shares = []
            for account in subset.accounts:
                total = account.bid_count_by_match.sum()
                if total > 0:
                    shares.append(account.bid_count_by_match[1] / total)
            return np.median(shares) if shares else np.nan

        assert phrase_share(subsets["Fraud"]) > phrase_share(
            subsets["Nonfraud"]
        )

    def test_fraud_only_in_dubious_verticals(self, sim_result):
        """Sec 5.2.1: fraud occupies the dubious verticals."""
        from repro.taxonomy.verticals import vertical

        for account in sim_result.fraud_accounts():
            if account.is_fraud_ground_truth:
                assert all(vertical(v).dubious for v in account.verticals)

    def test_us_dominates_fraud_registrations(self, subsets):
        """Table 1: the US is the top fraud registration country."""
        countries = [a.country for a in subsets["Fraud"].accounts]
        values, counts = np.unique(countries, return_counts=True)
        assert values[np.argmax(counts)] == "US"


class TestSection6Competition:
    def test_fraud_competes_with_fraud_more(self, sim_result, sim_window, subsets):
        """Figure 10: fraud advertisers face far more fraud competition."""
        analyzer = CompetitionAnalyzer(sim_result, sim_window)
        f_shares = [
            analyzer.affected_impression_share(a.advertiser_id)
            for a in subsets["F with clicks"].accounts
        ]
        nf_shares = [
            analyzer.affected_impression_share(a.advertiser_id)
            for a in subsets["NF with clicks"].accounts
        ]
        f_shares = [s for s in f_shares if not np.isnan(s)]
        nf_shares = [s for s in nf_shares if not np.isnan(s)]
        assert np.mean(f_shares) > 3 * max(np.mean(nf_shares), 0.01)

    def test_nonfraud_mostly_unaffected(self, sim_result, sim_window, subsets):
        """Figure 10: the median legitimate advertiser sees ~no fraud."""
        analyzer = CompetitionAnalyzer(sim_result, sim_window)
        shares = [
            analyzer.affected_impression_share(a.advertiser_id)
            for a in subsets["NF with clicks"].accounts
        ]
        shares = [s for s in shares if not np.isnan(s)]
        assert np.median(shares) < 0.1


class TestPolicyIntervention:
    def test_techsupport_ban_collapses_vertical(self):
        """Figure 8: the tech-support ban is the dominant regime change.

        Run two short simulations around a mid-run ban and compare the
        vertical's spend before and after.
        """
        from repro import run_simulation, small_config
        from repro.analysis.verticals import vertical_spend_by_month

        config = small_config(seed=31, days=180)
        config = config.with_detection(techsupport_ban_day=90.0)
        result = run_simulation(config)
        series = vertical_spend_by_month(result).series["techsupport"]
        # Months 0-2 pre-ban vs months 4-5 post-ban.
        before = series[:3].sum()
        after = series[4:6].sum()
        if before > 0:
            assert after < 0.5 * before
