"""Smoke tests: the runnable examples must actually run."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Click share by match type" in output
        assert "subset sizes" in output

    def test_dataset_export(self, tmp_path):
        output = run_example("dataset_export.py", str(tmp_path))
        assert "Table 3 recomputed" in output
        assert (tmp_path / "impressions.csv").exists()
        assert (tmp_path / "customers.jsonl").exists()
        assert (tmp_path / "detections.jsonl").exists()

    @pytest.mark.slow
    def test_policy_intervention(self):
        output = run_example("policy_intervention.py")
        assert "post-midpoint spend share" in output

    @pytest.mark.slow
    def test_detection_tuning(self):
        output = run_example("detection_tuning.py")
        assert "Detection aggressiveness sweep" in output
