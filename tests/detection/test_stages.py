"""Tests for individual detection stages."""

import numpy as np
import pytest

from repro.behavior.bidding import BidLevels, MatchMix
from repro.behavior.profiles import AdvertiserProfile
from repro.config import DetectionConfig, QueryConfig, default_config
from repro.detection.hazards import hardening_multiplier, sample_exponential_delay
from repro.detection.payment import sample_payment_detection
from repro.detection.rate_monitor import rate_hazard, sample_rate_detection
from repro.detection.registration import screen_registration
from repro.entities.enums import AdvertiserKind

DETECTION = DetectionConfig()
QUERY = QueryConfig()


def make_profile(kind=AdvertiserKind.FRAUD_TYPICAL, **overrides):
    defaults = dict(
        kind=kind,
        country="US",
        verticals=("downloads",),
        target_countries=("US",),
        n_ads=2,
        kw_per_ad=2,
        activity_scale=10.0,
        quality=1.0,
        match_mix=MatchMix(0.2, 0.5, 0.3),
        bid_levels=BidLevels(1.0, 1.0, 1.0),
        evasion_skill=0.2,
        uses_stolen_payment=True,
        first_ad_delay=0.5,
        mod_rate_per_entity=0.004,
    )
    defaults.update(overrides)
    return AdvertiserProfile(**defaults)


class TestHazards:
    def test_hardening_ramp(self):
        assert hardening_multiplier(0, 100, 2.0) == pytest.approx(1.0)
        assert hardening_multiplier(100, 100, 2.0) == pytest.approx(2.0)
        assert hardening_multiplier(50, 100, 2.0) == pytest.approx(1.5)
        assert hardening_multiplier(200, 100, 2.0) == pytest.approx(2.0)

    def test_exponential_delay_mean(self, rng):
        samples = [sample_exponential_delay(2.0, rng) for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_bad_mean_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_exponential_delay(0.0, rng)

    def test_bad_total_days(self):
        with pytest.raises(ValueError):
            hardening_multiplier(1, 0, 2.0)


class TestRegistrationScreen:
    def test_legit_never_screened(self, rng):
        profile = make_profile(
            kind=AdvertiserKind.LEGITIMATE,
            evasion_skill=0.0,
            uses_stolen_payment=False,
        )
        assert all(
            screen_registration(profile, 0.0, DETECTION, rng) is None
            for _ in range(200)
        )

    def test_fraud_screen_rate(self, rng):
        profile = make_profile(evasion_skill=0.0, uses_stolen_payment=False)
        caught = sum(
            screen_registration(profile, 0.0, DETECTION, rng) is not None
            for _ in range(3000)
        )
        assert 0.25 < caught / 3000 < 0.45

    def test_evasion_lowers_screen_rate(self, rng):
        naive = make_profile(evasion_skill=0.0)
        skilled = make_profile(evasion_skill=1.0)
        naive_caught = sum(
            screen_registration(naive, 0.0, DETECTION, rng) is not None
            for _ in range(2000)
        )
        skilled_caught = sum(
            screen_registration(skilled, 0.0, DETECTION, rng) is not None
            for _ in range(2000)
        )
        assert skilled_caught < naive_caught

    def test_screen_time_after_creation(self, rng):
        profile = make_profile(evasion_skill=0.0)
        for _ in range(200):
            time = screen_registration(profile, 10.0, DETECTION, rng)
            if time is not None:
                assert time > 10.0


class TestRateMonitor:
    def test_legit_no_hazard(self):
        profile = make_profile(kind=AdvertiserKind.LEGITIMATE)
        assert rate_hazard(profile, QUERY, DETECTION) == 0.0

    def test_low_rate_no_hazard(self):
        profile = make_profile(activity_scale=0.001)
        assert rate_hazard(profile, QUERY, DETECTION) == 0.0

    def test_high_rate_hazard_grows(self):
        slow = make_profile(activity_scale=30.0)
        fast = make_profile(activity_scale=3000.0)
        assert rate_hazard(fast, QUERY, DETECTION) > rate_hazard(
            slow, QUERY, DETECTION
        )

    def test_prolific_dampened(self):
        typical = make_profile(activity_scale=3000.0)
        prolific = make_profile(
            kind=AdvertiserKind.FRAUD_PROLIFIC, activity_scale=3000.0
        )
        assert rate_hazard(prolific, QUERY, DETECTION) < rate_hazard(
            typical, QUERY, DETECTION
        )

    def test_detection_time_after_first_ad(self, rng):
        profile = make_profile(activity_scale=3000.0)
        time = sample_rate_detection(profile, 7.0, QUERY, DETECTION, 1.0, rng)
        assert time is None or time > 7.0


class TestPayment:
    def test_clean_payment_never_detected(self, rng):
        profile = make_profile(uses_stolen_payment=False)
        assert (
            sample_payment_detection(profile, 0.0, DETECTION, 1.0, rng) is None
        )

    def test_stolen_payment_detected_with_delay(self, rng):
        profile = make_profile(uses_stolen_payment=True)
        times = [
            sample_payment_detection(profile, 5.0, DETECTION, 1.0, rng)
            for _ in range(500)
        ]
        assert all(t is not None and t > 5.0 for t in times)
        # Median delay ~ exp(chargeback_mu) days.
        delays = np.asarray([t - 5.0 for t in times])
        assert np.median(delays) == pytest.approx(
            np.exp(DETECTION.chargeback_mu), rel=0.35
        )

    def test_hardening_shortens_delay(self, rng):
        profile = make_profile(uses_stolen_payment=True)
        slow = np.median(
            [
                sample_payment_detection(profile, 0.0, DETECTION, 1.0, rng)
                for _ in range(400)
            ]
        )
        fast = np.median(
            [
                sample_payment_detection(profile, 0.0, DETECTION, 2.0, rng)
                for _ in range(400)
            ]
        )
        assert fast < slow
