"""Tests for the anomaly-detector baseline (Section 7 study)."""

import numpy as np
import pytest

from repro.detection.anomaly import (
    FEATURE_NAMES,
    AnomalyScorer,
    account_features,
    evaluate_anomaly_detector,
)


class TestFeatures:
    def test_vector_shape(self, sim_result):
        for account in sim_result.accounts[:20]:
            features = account_features(account)
            assert features.shape == (len(FEATURE_NAMES),)
            assert np.isfinite(features).all()

    def test_dubious_flag(self, sim_result):
        fraud = next(a for a in sim_result.accounts if a.is_fraud_ground_truth)
        assert account_features(fraud)[-1] == 1.0


class TestScorer:
    def test_fit_requires_accounts(self):
        with pytest.raises(ValueError):
            AnomalyScorer.fit([])

    def test_reference_population_scores_low(self, sim_result):
        reference = [
            a for a in sim_result.accounts if not a.labeled_fraud and a.posted_ads
        ]
        scorer = AnomalyScorer.fit(reference)
        ref_scores = scorer.score_many(reference[:300])
        fraud = [
            a
            for a in sim_result.accounts
            if a.labeled_fraud and a.posted_ads
        ]
        if fraud:
            fraud_scores = scorer.score_many(fraud)
            # Fraud is, on average, more anomalous than the reference.
            assert fraud_scores.mean() > ref_scores.mean()

    def test_scores_nonnegative(self, sim_result):
        reference = [a for a in sim_result.accounts if not a.labeled_fraud]
        scorer = AnomalyScorer.fit(reference)
        scores = scorer.score_many(sim_result.accounts[:100])
        assert (scores >= 0).all()


class TestEvaluation:
    def test_basic_evaluation(self, sim_result):
        evaluation = evaluate_anomaly_detector(sim_result, flag_rate=0.1)
        assert 0.0 <= evaluation.precision <= 1.0
        assert 0.0 <= evaluation.recall <= 1.0
        assert evaluation.n_scored > 0

    def test_flag_rate_validation(self, sim_result):
        with pytest.raises(ValueError):
            evaluate_anomaly_detector(sim_result, flag_rate=0.0)

    def test_detector_beats_chance_overall(self, sim_result):
        """The baseline has real signal on the *full* fraud population."""
        evaluation = evaluate_anomaly_detector(sim_result, flag_rate=0.1)
        if not np.isnan(evaluation.auc_proxy):
            assert evaluation.auc_proxy > 0.5

    def test_diminishing_returns_on_survivors(self, sim_result):
        """Section 7: fraud that survived the pipeline blends in -- the
        anomaly baseline recalls survivors no better than (and usually
        worse than) the general fraud population."""
        evaluation = evaluate_anomaly_detector(sim_result, flag_rate=0.1)
        if not np.isnan(evaluation.survivor_recall):
            assert evaluation.survivor_recall <= evaluation.recall + 0.25
