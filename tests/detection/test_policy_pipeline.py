"""Tests for the policy engine and the full detection pipeline."""

import numpy as np
import pytest

from repro.behavior.factory import IdAllocator, materialize_account
from repro.behavior.fraudulent import sample_fraud_profile
from repro.behavior.legitimate import sample_legitimate_profile
from repro.config import DetectionConfig, default_config
from repro.detection.content_filter import content_filter_catch_prob
from repro.detection.pipeline import DetectionPipeline
from repro.detection.policy import PolicyEngine
from repro.entities.advertiser import Advertiser
from repro.matching.blacklist import Blacklist
from repro.taxonomy.geography import country as country_info

CONFIG = default_config()


def build_account(profile, first_ad=5.0, horizon=200.0, seed=5):
    rng = np.random.Generator(np.random.PCG64(seed))
    info = country_info(profile.country)
    advertiser = Advertiser(
        advertiser_id=1,
        kind=profile.kind,
        created_time=first_ad - 1.0,
        country=profile.country,
        language=info.language,
        currency=info.currency,
        activity_scale=profile.activity_scale,
        quality=profile.quality,
        evasion_skill=profile.evasion_skill,
        uses_stolen_payment=profile.uses_stolen_payment,
    )
    return materialize_account(
        advertiser, profile, first_ad, horizon, CONFIG, IdAllocator(), rng
    )


def fraud_profile(seed=1, prolific=False, vertical=None):
    rng = np.random.Generator(np.random.PCG64(seed))
    for _ in range(500):
        profile = sample_fraud_profile(CONFIG, rng, prolific)
        if vertical is None or profile.primary_vertical == vertical:
            return profile
    raise AssertionError(f"could not sample a profile in {vertical}")


class TestPolicyEngine:
    def test_no_ban_no_sweep(self, rng):
        engine = PolicyEngine.from_config(
            DetectionConfig(techsupport_ban_day=None)
        )
        assert engine.sweep_time(("techsupport",), 0.0, 1.0, rng) is None

    def test_ban_sweeps_existing_accounts(self, rng):
        engine = PolicyEngine.from_config(
            DetectionConfig(techsupport_ban_day=100.0)
        )
        times = [
            engine.sweep_time(("techsupport",), 0.0, 1.0, rng)
            for _ in range(100)
        ]
        assert all(t is not None and t >= 100.0 for t in times)

    def test_post_ban_entrants_caught_fast(self, rng):
        engine = PolicyEngine.from_config(
            DetectionConfig(techsupport_ban_day=100.0)
        )
        times = [
            engine.sweep_time(("techsupport",), 150.0, 151.0, rng)
            for _ in range(200)
        ]
        caught = [t for t in times if t is not None]
        assert len(caught) > 150
        assert np.median([t - 151.0 for t in caught]) < 2.0

    def test_other_verticals_untouched(self, rng):
        engine = PolicyEngine.from_config(
            DetectionConfig(techsupport_ban_day=100.0)
        )
        assert engine.sweep_time(("downloads",), 0.0, 1.0, rng) is None

    def test_vertical_banned_at(self):
        engine = PolicyEngine.from_config(
            DetectionConfig(techsupport_ban_day=100.0)
        )
        assert not engine.vertical_banned_at("techsupport", 99.0)
        assert engine.vertical_banned_at("techsupport", 100.0)
        assert not engine.vertical_banned_at("downloads", 200.0)

    def test_blacklist_enactment(self):
        engine = PolicyEngine.from_config(
            DetectionConfig(techsupport_ban_day=100.0)
        )
        blacklist = Blacklist.default()
        engine.apply_to_blacklist(blacklist, 50.0)
        assert not blacklist.term_hits("call our helpline")
        engine.apply_to_blacklist(blacklist, 100.0)
        assert blacklist.term_hits("call our helpline")


class TestContentFilter:
    def test_branded_copy_raises_catch_prob(self):
        blacklist = Blacklist.default()
        risky = build_account(fraud_profile(seed=3, vertical="impersonation"))
        # Typical impersonation fraud uses branded copy and keywords.
        prob = content_filter_catch_prob(
            risky, blacklist, CONFIG.detection, 1.0
        )
        assert prob > CONFIG.detection.content_filter_prob

    def test_prolific_evasive_low_catch(self):
        blacklist = Blacklist.default()
        probs = []
        for seed in range(12):
            account = build_account(
                fraud_profile(seed=seed, prolific=True, vertical="weightloss"),
                seed=seed,
            )
            probs.append(
                content_filter_catch_prob(
                    account, blacklist, CONFIG.detection, 1.0
                )
            )
        assert np.median(probs) < 0.2


class TestPipeline:
    def _pipeline(self, **overrides):
        detection = DetectionConfig(**overrides) if overrides else CONFIG.detection
        return DetectionPipeline(detection, CONFIG.query, 728.0)

    def test_fraud_eventually_detected(self):
        pipeline = self._pipeline(evade_study_prob=0.0)
        rng = np.random.Generator(np.random.PCG64(9))
        outcomes = []
        for seed in range(30):
            account = build_account(fraud_profile(seed=seed), seed=seed)
            outcomes.append(
                pipeline.evaluate_fraud_account(account, 5.0, rng)
            )
        assert all(o.detected for o in outcomes)
        assert all(o.shutdown_time > 5.0 for o in outcomes)
        assert all(o.labeled_fraud for o in outcomes)

    def test_evade_study(self):
        pipeline = self._pipeline(evade_study_prob=1.0)
        rng = np.random.Generator(np.random.PCG64(9))
        account = build_account(fraud_profile(seed=2))
        outcome = pipeline.evaluate_fraud_account(account, 5.0, rng)
        assert not outcome.detected
        assert not outcome.labeled_fraud

    def test_legit_rarely_hit(self):
        pipeline = self._pipeline()
        rng = np.random.Generator(np.random.PCG64(10))
        hits = sum(
            pipeline.evaluate_legitimate_account(0.0, rng, 728.0).detected
            for _ in range(4000)
        )
        assert hits / 4000 < 0.01

    def test_commit_records_and_blacklists(self):
        pipeline = self._pipeline()
        rng = np.random.Generator(np.random.PCG64(11))
        account = build_account(fraud_profile(seed=4))
        outcome = pipeline.evaluate_fraud_account(account, 5.0, rng)
        pipeline.commit(1, outcome, ["badsite123.biz"])
        assert len(pipeline.records) == 1
        assert pipeline.records[0].advertiser_id == 1
        assert pipeline.blacklist.is_domain_blacklisted("badsite123.biz")

    def test_commit_ignores_undetected(self):
        pipeline = self._pipeline()
        from repro.detection.pipeline import DetectionOutcome

        pipeline.commit(1, DetectionOutcome(None, None, False))
        assert pipeline.records == []

    def test_prolific_lives_longer(self):
        pipeline = self._pipeline(evade_study_prob=0.0, payment_fraud_prob=0.0)
        rng = np.random.Generator(np.random.PCG64(12))
        typical_lifetimes, prolific_lifetimes = [], []
        for seed in range(40):
            t_account = build_account(
                fraud_profile(seed=seed, vertical="weightloss"), seed=seed
            )
            outcome = pipeline.evaluate_fraud_account(t_account, 5.0, rng)
            if outcome.detected:
                typical_lifetimes.append(outcome.shutdown_time - 5.0)
            p_account = build_account(
                fraud_profile(seed=seed + 500, prolific=True, vertical="weightloss"),
                seed=seed,
            )
            outcome = pipeline.evaluate_fraud_account(p_account, 5.0, rng)
            if outcome.detected:
                prolific_lifetimes.append(outcome.shutdown_time - 5.0)
        assert np.median(prolific_lifetimes) > 5 * np.median(typical_lifetimes)
