"""Tests for the run registry (``python -m repro.obs runs ...``)."""

from __future__ import annotations

import json

from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressSink
from repro.obs.registry import (
    RUNS_INDEX_NAME,
    index_runs,
    live_status,
    load_validation,
    phase_totals,
    render_runs_table,
    summarize_run,
)

from .test_diff import make_run


def _write_sidecar(run_dir, name, **attrs):
    sink = ProgressSink(
        run_dir,
        days=attrs.pop("days", 100),
        registry=MetricsRegistry(),
        wall_clock=lambda: 1000.0,
    )
    sink.emit({"t": 1.0, "kind": "event", "name": name, "attrs": attrs})
    return sink


class TestSummarizeRun:
    def test_full_run_summary(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        summary = summarize_run(run_dir)
        assert summary["dir"] == "a"
        assert summary["seed"] == 7
        assert summary["phase"] == "complete"
        assert summary["phases_s"]["phase3.auctions"] > 0
        assert summary["validation"]["passed"] == 2
        ledger = summary["ledger"]
        assert ledger["days"] == 4
        assert ledger["registrations"] == 28.0  # 4 days x (5 + 2)
        assert ledger["clicks"] == 40.0

    def test_non_run_directory_returns_none(self, tmp_path):
        assert summarize_run(tmp_path) is None
        (tmp_path / "MANIFEST.json").write_text("not json")
        assert summarize_run(tmp_path) is None

    def test_missing_artifacts_are_null_sections(self, tmp_path):
        run_dir = tmp_path / "bare"
        run_dir.mkdir()
        (run_dir / "MANIFEST.json").write_text(
            json.dumps({"seed": 1, "days": 2, "phase": "phase1"})
        )
        summary = summarize_run(run_dir)
        assert summary is not None
        assert summary["phases_s"] is None
        assert summary["validation"] is None
        assert summary["ledger"] is None
        assert summary["bench"] is None

    def test_bench_artifacts_summarized(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        (run_dir / "BENCH_engine.json").write_text(
            json.dumps({"schema": "repro.bench_engine/v2", "rows": 123})
        )
        summary = summarize_run(run_dir)
        assert summary["bench"]["BENCH_engine.json"]["rows"] == 123


class TestIndexRuns:
    def test_indexes_children_and_skips_non_runs(self, tmp_path):
        make_run(tmp_path, "a")
        make_run(tmp_path, "b")
        (tmp_path / "scratch").mkdir()  # no manifest: not a run
        out = tmp_path / RUNS_INDEX_NAME
        index = index_runs(tmp_path, out=out)
        assert index["schema"] == "repro.runs/v1"
        assert [run["dir"] for run in index["runs"]] == ["a", "b"]
        assert json.loads(out.read_text())["runs"][0]["dir"] == "a"

    def test_root_may_itself_be_a_run_dir(self, tmp_path):
        run_dir = make_run(tmp_path, "solo")
        index = index_runs(run_dir)
        assert [run["dir"] for run in index["runs"]] == ["solo"]

    def test_table_renders_every_run(self, tmp_path):
        make_run(tmp_path, "a")
        table = render_runs_table(index_runs(tmp_path))
        assert "a" in table
        assert "complete" in table
        assert "2/2" in table  # validation column
        assert "4d" in table  # ledger column
        empty = render_runs_table({"root": "X", "runs": []})
        assert "no run directories" in empty


class TestLoadValidation:
    def test_report_text_fallback(self, tmp_path):
        # No validation.json: parse the stable report line format.
        (tmp_path / "validation_report.txt").write_text(
            "validation vs paper\n"
            "[ok  ] fraud_click_share                          "
            "paper: ~33% of clicks            measured: 0.31 (sec 5.1)\n"
            "[MISS] mean_cpc                                   "
            "paper: $0.50-2.00                measured: 9.1 (sec 4.2)\n"
        )
        result = load_validation(tmp_path)
        assert result == {
            "passed": 1,
            "total": 2,
            "ok": ["fraud_click_share"],
            "miss": ["mean_cpc"],
        }

    def test_json_takes_precedence(self, tmp_path):
        run_dir = make_run(tmp_path, "a", validation_ok=("only_json",))
        (run_dir / "validation_report.txt").write_text(
            "[ok  ] from_text  paper: x  measured: 1 (s)\n"
        )
        assert load_validation(run_dir)["ok"] == ["only_json"]

    def test_no_artifact_returns_none(self, tmp_path):
        assert load_validation(tmp_path) is None

    def test_corrupt_json_returns_none(self, tmp_path):
        (tmp_path / "validation.json").write_text("{broken")
        assert load_validation(tmp_path) is None


class TestPhaseTotals:
    def test_aggregates_by_leaf_name(self):
        events = [
            {"t": 1, "kind": "span", "name": "runner.run", "id": 1,
             "parent": None, "start": 0, "dur": 5.0, "attrs": {}},
            {"t": 1, "kind": "span", "name": "phase3.auctions", "id": 2,
             "parent": 1, "start": 0, "dur": 2.0, "attrs": {}},
            {"t": 1, "kind": "span", "name": "phase3.auctions", "id": 3,
             "parent": 1, "start": 2, "dur": 1.5, "attrs": {}},
            {"t": 1, "kind": "span", "name": "not.a.phase", "id": 4,
             "parent": 1, "start": 0, "dur": 9.0, "attrs": {}},
        ]
        totals = phase_totals(events)
        assert totals["runner.run"] == 5.0
        assert totals["phase3.auctions"] == 3.5
        assert "not.a.phase" not in totals


class TestLiveStatus:
    def test_pre_sidecar_run_has_no_live_status(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        assert live_status(run_dir) is None
        assert summarize_run(run_dir)["live"] is None

    def test_running_sidecar_surfaces_progress(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        _write_sidecar(
            run_dir, "heartbeat",
            phase="phase3", day=49, days_per_sec=20.0, eta_s=2.5,
        )
        live = live_status(run_dir)
        assert live["status"] == "running"
        assert live["phase"] == "phase3"
        assert live["day"] == 49
        assert live["days"] == 100
        assert live["eta_s"] == 2.5
        assert live["degraded"] is False
        assert summarize_run(run_dir)["live"] == live

    def test_table_status_column_and_fallback_notice(self, tmp_path):
        complete = make_run(tmp_path, "done")
        _write_sidecar(complete, "runner.complete", days=100)
        running = make_run(tmp_path, "live")
        _write_sidecar(running, "heartbeat", phase="phase3", day=10,
                       eta_s=30.0)
        make_run(tmp_path, "old")  # pre-sidecar: no progress.json

        table = render_runs_table(index_runs(tmp_path))
        assert "status" in table
        assert "complete" in table
        assert "running" in table
        assert "eta" in table
        # The pre-sidecar run degrades to '-' plus a single notice.
        assert "-" in table
        assert "1 run(s) predate the progress sidecar" in table

    def test_table_without_pre_sidecar_runs_has_no_notice(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        _write_sidecar(run_dir, "runner.complete", days=100)
        table = render_runs_table(index_runs(tmp_path))
        assert "predate the progress sidecar" not in table

    def test_degraded_run_is_flagged_in_status(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        sink = _write_sidecar(run_dir, "runner.start", days=100)
        sink.emit({"t": 2.0, "kind": "event", "name": "io.degraded",
                   "attrs": {"artifact": "telemetry.jsonl", "error": "x"}})
        live = live_status(run_dir)
        assert live["degraded"] is True
        table = render_runs_table(index_runs(tmp_path))
        assert "running!" in table


class TestRunsCli:
    def test_index_list_show_round_trip(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a")

        assert obs_main(["runs", "index", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "indexed 1 run(s)" in out
        assert (tmp_path / RUNS_INDEX_NAME).exists()

        assert obs_main(["runs", "list", str(tmp_path)]) == 0
        assert "complete" in capsys.readouterr().out

        assert obs_main(["runs", "show", str(run_dir)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["dir"] == "a"

    def test_show_non_run_dir_exits_2(self, tmp_path):
        assert obs_main(["runs", "show", str(tmp_path)]) == 2


class TestAnalysisSummary:
    def _analyzed_run(self, tmp_path, name="a", unexplained=1):
        run_dir = make_run(tmp_path, name)
        (run_dir / "analyze.json").write_text(
            json.dumps(
                {
                    "schema": "repro.analyze/v1",
                    "totals": {
                        "anomalies": 3,
                        "unexplained_anomalies": unexplained,
                        "level_shifts": 2,
                    },
                }
            )
        )
        return run_dir

    def test_summary_condenses_analyze_totals(self, tmp_path):
        summary = summarize_run(self._analyzed_run(tmp_path))
        assert summary["analysis"] == {
            "anomalies": 3,
            "unexplained_anomalies": 1,
            "level_shifts": 2,
        }

    def test_unanalyzed_run_has_null_analysis(self, tmp_path):
        summary = summarize_run(make_run(tmp_path, "a"))
        assert summary["analysis"] is None
        assert summary["artifacts"] == []

    def test_corrupt_analysis_is_null(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        (run_dir / "analyze.json").write_text("not json")
        assert summarize_run(run_dir)["analysis"] is None

    def test_artifacts_recorded_in_index(self, tmp_path):
        run_dir = self._analyzed_run(tmp_path)
        (run_dir / "dashboard.html").write_text("<!DOCTYPE html>\n")
        index = index_runs(tmp_path, out=tmp_path / RUNS_INDEX_NAME)
        (entry,) = index["runs"]
        assert entry["artifacts"] == ["analyze.json", "dashboard.html"]
        persisted = json.loads((tmp_path / RUNS_INDEX_NAME).read_text())
        assert persisted["runs"][0]["artifacts"] == [
            "analyze.json",
            "dashboard.html",
        ]

    def test_table_anom_column(self, tmp_path):
        self._analyzed_run(tmp_path, "flagged", unexplained=2)
        self._analyzed_run(tmp_path, "clean", unexplained=0)
        make_run(tmp_path, "unanalyzed")
        table = render_runs_table(index_runs(tmp_path))
        assert "anom" in table.splitlines()[0]
        row = {line.split()[0]: line for line in table.splitlines()[2:5]}
        assert " 2! " in row["flagged"]
        assert " 3 " in row["clean"]  # analyzed: total shown, no bang
        assert " - " in row["unanalyzed"]
