"""Tests for the self-contained HTML dashboards (``repro.obs dash``)."""

from __future__ import annotations

import json

from repro.obs.__main__ import main as obs_main
from repro.obs.dash import DASHBOARD_NAME, render_compare, render_dashboard
from repro.obs.timeseries import DAYLEDGER_NAME

from .test_analyze import _spiked_ledger
from .test_diff import make_run


class TestRenderDashboard:
    def test_double_render_is_byte_identical(self, tmp_path):
        run_dir = make_run(
            tmp_path, "a", ledger=_spiked_ledger(policy_day=30),
            rss_peak_kb=65536.0,
        )
        first = render_dashboard(run_dir)
        second = render_dashboard(run_dir)
        assert first == second
        assert first.encode() == second.encode()

    def test_self_contained_html_with_inline_svg(self, tmp_path):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        html = render_dashboard(run_dir)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<style>" in html
        # No external references: the artifact must open offline.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html
        # Every ledger series gets a sparkline cell.
        assert "fraud_click_share" in html
        assert "mean_cpc" in html

    def test_policy_rule_and_anomaly_markers(self, tmp_path):
        run_dir = make_run(
            tmp_path, "a",
            ledger=_spiked_ledger(days=70, spike_day=32, policy_day=30),
        )
        html = render_dashboard(run_dir)
        # Dashed vertical rule on the policy day, orange (near-policy)
        # anomaly dots for the in-window spike.
        assert 'class="policy"' in html
        assert 'class="anompol"' in html

    def test_unexplained_anomaly_renders_red(self, tmp_path):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        html = render_dashboard(run_dir)
        assert 'class="anom"' in html
        assert 'class="policy"' not in html

    def test_missing_artifacts_render_notices(self, tmp_path):
        run_dir = make_run(tmp_path, "a")
        (run_dir / DAYLEDGER_NAME).unlink()
        (run_dir / "validation.json").unlink()
        html = render_dashboard(run_dir)
        assert "no readable day ledger" in html
        assert "no validation artifact" in html

    def test_phase_bars_present(self, tmp_path):
        run_dir = make_run(tmp_path, "a", phase3_s=3.0)
        html = render_dashboard(run_dir)
        assert "phase3.auctions" in html
        assert 'class="bar"' in html


class TestRenderCompare:
    def test_matrix_has_one_column_per_run(self, tmp_path):
        run_a = make_run(tmp_path, "a", ledger=_spiked_ledger())
        run_b = make_run(tmp_path, "b", phase3_s=4.0)
        html = render_compare([run_a, run_b])
        assert "Comparison matrix" in html
        assert "<th>a</th>" in html and "<th>b</th>" in html
        assert "Health series per run" in html
        assert html == render_compare([run_a, run_b])

    def test_compare_tolerates_missing_ledger(self, tmp_path):
        run_a = make_run(tmp_path, "a")
        run_b = make_run(tmp_path, "b")
        (run_b / DAYLEDGER_NAME).unlink()
        html = render_compare([run_a, run_b])
        assert "no ledger" in html


class TestCli:
    def test_dash_writes_default_artifact(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        assert obs_main(["dash", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert f"wrote dashboard -> {run_dir / DASHBOARD_NAME}" in out
        assert (run_dir / DASHBOARD_NAME).read_text().startswith("<!DOCTYPE")

    def test_dash_cli_is_byte_deterministic(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        out_a = tmp_path / "one.html"
        out_b = tmp_path / "two.html"
        assert obs_main(["dash", str(run_dir), "--out", str(out_a)]) == 0
        assert obs_main(["dash", str(run_dir), "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        capsys.readouterr()

    def test_dash_leaves_run_untouched(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        before = {
            p.name: p.read_bytes() for p in run_dir.iterdir() if p.is_file()
        }
        assert obs_main(["dash", str(run_dir)]) == 0
        for name, payload in before.items():
            assert (run_dir / name).read_bytes() == payload
        capsys.readouterr()

    def test_compare_flag_writes_matrix(self, tmp_path, capsys):
        run_a = make_run(tmp_path, "a")
        run_b = make_run(tmp_path, "b")
        target = tmp_path / "matrix.html"
        code = obs_main(
            ["dash", str(run_a), "--compare", str(run_b), "--out", str(target)]
        )
        assert code == 0
        assert "wrote comparison (2 runs)" in capsys.readouterr().out
        assert "Comparison matrix" in target.read_text()

    def test_missing_run_exits_2(self, tmp_path, capsys):
        assert obs_main(["dash", str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_manifest_only_dir_still_renders(self, tmp_path, capsys):
        run_dir = tmp_path / "bare"
        run_dir.mkdir()
        (run_dir / "MANIFEST.json").write_text(
            json.dumps({"seed": 1, "days": 2, "phase": "phase1", "chunks": []})
        )
        assert obs_main(["dash", str(run_dir)]) == 0
        html = (run_dir / DASHBOARD_NAME).read_text()
        assert "no readable day ledger" in html
        assert "no telemetry recorded" in html
        capsys.readouterr()
