"""Tests for the background resource sampler (RSS/CPU/GC envelopes)."""

from __future__ import annotations

import gc

from repro.obs.resources import DEFAULT_INTERVAL_S, ResourceSampler, read_rss_kb


class TestReadRss:
    def test_reports_positive_resident_size(self):
        assert read_rss_kb() > 0.0


class TestSamplerLifecycle:
    def test_start_stop_produces_summary(self):
        sampler = ResourceSampler(interval_s=0.01)
        sampler.start()
        assert sampler.running
        summary = sampler.stop()
        assert not sampler.running
        assert summary["interval_s"] == 0.01
        overall = summary["overall"]
        # start() and stop() each take one synchronous sample, so the
        # envelope is populated even for an instant-long run.
        assert overall["samples"] >= 2
        assert overall["rss_peak_kb"] > 0.0
        assert overall["rss_mean_kb"] > 0.0
        assert overall["wall_s"] >= 0.0
        assert set(overall["gc"]) == {
            "collections", "pause_total_s", "pause_max_s",
        }

    def test_start_is_idempotent(self):
        sampler = ResourceSampler(interval_s=0.01)
        sampler.start()
        thread = sampler._thread
        sampler.start()
        assert sampler._thread is thread
        sampler.stop()

    def test_stop_removes_gc_callback(self):
        sampler = ResourceSampler(interval_s=0.01)
        sampler.start()
        assert sampler._on_gc in gc.callbacks
        sampler.stop()
        assert sampler._on_gc not in gc.callbacks

    def test_interval_clamps_to_sane_floor(self):
        assert ResourceSampler(interval_s=0.0).interval_s == 0.005
        assert ResourceSampler().interval_s == DEFAULT_INTERVAL_S


class TestPhaseAttribution:
    def test_phases_accumulate_wall_and_cpu(self):
        clock_value = [0.0]
        sampler = ResourceSampler(
            interval_s=60.0, clock=lambda: clock_value[0]
        )
        sampler.start()
        sampler.set_phase("phase1")
        clock_value[0] = 2.0
        sampler.set_phase("phase3")
        clock_value[0] = 5.0
        summary = sampler.stop()
        phases = summary["phases"]
        assert set(phases) == {"phase1", "phase3"}
        assert phases["phase1"]["wall_s"] == 2.0
        assert phases["phase3"]["wall_s"] == 3.0
        assert summary["overall"]["wall_s"] == 5.0

    def test_set_phase_none_closes_without_opening(self):
        sampler = ResourceSampler(interval_s=60.0)
        sampler.start()
        sampler.set_phase("phase1")
        sampler.set_phase(None)
        summary = sampler.stop()
        assert list(summary["phases"]) == ["phase1"]

    def test_reentering_a_phase_accumulates(self):
        clock_value = [0.0]
        sampler = ResourceSampler(
            interval_s=60.0, clock=lambda: clock_value[0]
        )
        sampler.start()
        sampler.set_phase("phase3")
        clock_value[0] = 1.0
        sampler.set_phase(None)
        sampler.set_phase("phase3")
        clock_value[0] = 3.0
        summary = sampler.stop()
        assert summary["phases"]["phase3"]["wall_s"] == 3.0


class TestGcPauses:
    def test_collections_are_timed_into_the_open_phase(self):
        sampler = ResourceSampler(interval_s=60.0)
        sampler.start()
        sampler.set_phase("phase1")
        gc.collect()
        gc.collect()
        summary = sampler.stop()
        assert summary["overall"]["gc"]["collections"] >= 2
        assert summary["phases"]["phase1"]["gc"]["collections"] >= 2
        assert (
            summary["overall"]["gc"]["pause_total_s"]
            >= summary["overall"]["gc"]["pause_max_s"]
        )


class TestBackgroundThread:
    def test_thread_samples_while_running(self):
        import time

        sampler = ResourceSampler(interval_s=0.005)
        sampler.start()
        time.sleep(0.08)
        summary = sampler.stop()
        # ~16 intervals elapsed; even a heavily loaded box lands a few.
        assert summary["overall"]["samples"] >= 4

    def test_summary_is_json_serializable(self):
        import json

        sampler = ResourceSampler(interval_s=0.01)
        sampler.start()
        sampler.set_phase("phase1")
        summary = sampler.stop()
        assert json.loads(json.dumps(summary)) == summary
