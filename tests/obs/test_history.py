"""Tests for bench-history trends and the perf gate (``repro.obs trend``)."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.history import (
    evaluate_trend_fail_on,
    load_history,
    parse_trend_fail_on,
    render_trend,
    trend_report,
)


@pytest.fixture
def propagate_repro_logs(monkeypatch):
    # The ``repro`` logger tree runs with propagate=False once its
    # handler is attached; let records reach caplog's root handler.
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)


def _row(
    total=10.0,
    population=6.0,
    market=1.0,
    auctions=3.0,
    rows_per_sec=1000.0,
    columnar=5000.0,
    preset="default",
    days=728,
    seed=1,
    measured_at="2026-01-01T00:00:00+00:00",
) -> dict:
    return {
        "measured_at": measured_at,
        "preset": preset,
        "days": days,
        "seed": seed,
        "phases": {
            "population_s": population,
            "market_build_s": market,
            "auctions_s": auctions,
            "total_s": total,
        },
        "rows": 1000,
        "rows_per_sec": rows_per_sec,
        "columnar_write_rows_per_sec": columnar,
    }


def _write(path, rows) -> None:
    path.write_text(
        "".join(json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
                for r in rows)
    )


class TestLoadHistory:
    def test_round_trips_rows(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write(path, [_row(), _row(total=11.0)])
        rows = load_history(path)
        assert len(rows) == 2
        assert rows[1]["phases"]["total_s"] == 11.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_history(tmp_path / "absent.jsonl")

    def test_torn_tail_skipped_with_notice(
        self, tmp_path, caplog, propagate_repro_logs
    ):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            json.dumps(_row()) + "\n" + '{"measured_at":"2026-01-02","pha'
        )
        with caplog.at_level("WARNING", logger="repro.obs.history"):
            rows = load_history(path)
        assert len(rows) == 1
        assert any("torn append tail" in r.getMessage() for r in caplog.records)

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("garbage\n" + json.dumps(_row()) + "\n")
        with pytest.raises(ValueError, match="corruption"):
            load_history(path)


class TestTrendReport:
    def test_groups_by_preset_days_seed(self):
        rows = [
            _row(preset="default", total=10.0),
            _row(preset="quick", days=40, total=1.0),
            _row(preset="default", total=12.0),
        ]
        report = trend_report(rows)
        labels = [
            (g["preset"], g["days"], g["rows"]) for g in report["groups"]
        ]
        assert labels == [("default", 728, 2), ("quick", 40, 1)]
        assert report["latest_key"] == "default/days=728/seed=1"

    def test_baseline_is_median_of_last_k(self):
        # Priors 10,20,30,40,50,60 with k=5 -> median of last 5 = 40.
        rows = [_row(total=t) for t in (10, 20, 30, 40, 50, 60)] + [
            _row(total=50.0)
        ]
        report = trend_report(rows, baseline_k=5)
        total = report["groups"][0]["metrics"]["total_s"]
        assert total["baseline"] == 40.0
        assert total["value"] == 50.0
        assert total["regression"] == pytest.approx(0.25)

    def test_first_measurement_has_no_baseline(self):
        report = trend_report([_row()])
        total = report["groups"][0]["metrics"]["total_s"]
        assert total["baseline"] is None and total["regression"] is None

    def test_throughput_regression_positive_when_slower(self):
        rows = [_row(rows_per_sec=1000.0), _row(rows_per_sec=800.0)]
        metrics = trend_report(rows)["groups"][0]["metrics"]
        assert metrics["rows_per_sec"]["regression"] == pytest.approx(0.25)
        # Faster candidate -> negative (improvement).
        rows = [_row(rows_per_sec=1000.0), _row(rows_per_sec=1250.0)]
        metrics = trend_report(rows)["groups"][0]["metrics"]
        assert metrics["rows_per_sec"]["regression"] == pytest.approx(-0.2)


class TestFailOn:
    def test_parse_rules(self):
        assert parse_trend_fail_on(["total=0.25,phase=0.5"]) == {
            "total": 0.25,
            "phase": 0.5,
        }
        with pytest.raises(ValueError, match="unknown"):
            parse_trend_fail_on(["speed=1"])
        with pytest.raises(ValueError, match="not a number"):
            parse_trend_fail_on(["total=slow"])

    def test_total_rule_fires_on_regression(self):
        report = trend_report([_row(total=10.0), _row(total=14.0)])
        violations = evaluate_trend_fail_on(report, {"total": 0.25})
        assert violations and "total_s regressed" in violations[0]
        assert evaluate_trend_fail_on(report, {"total": 0.5}) == []

    def test_phase_rule_names_the_phase(self):
        report = trend_report(
            [_row(auctions=3.0), _row(auctions=6.0)]
        )
        violations = evaluate_trend_fail_on(report, {"phase": 0.5})
        assert violations and "auctions_s" in violations[0]

    def test_throughput_rule_fires_on_drop(self):
        report = trend_report(
            [_row(columnar=5000.0), _row(columnar=2000.0)]
        )
        violations = evaluate_trend_fail_on(report, {"throughput": 0.5})
        assert violations and "columnar_write_rows_per_sec" in violations[0]

    def test_no_baseline_never_violates(self):
        report = trend_report([_row()])
        assert evaluate_trend_fail_on(
            report, {"total": 0.0, "phase": 0.0, "throughput": 0.0}
        ) == []


class TestCli:
    def test_trend_ok_exit_0(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(path, [_row(total=10.0), _row(total=10.5)])
        code = obs_main(
            ["trend", "--history", str(path), "--fail-on", "total=0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench trend" in out and "ok: 1 rule(s) held" in out

    def test_trend_violation_exit_1(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(path, [_row(total=10.0), _row(total=20.0)])
        code = obs_main(
            ["trend", "--history", str(path), "--fail-on", "total=0.25"]
        )
        assert code == 1
        assert "FAIL:" in capsys.readouterr().out

    def test_missing_history_exit_2(self, tmp_path, capsys):
        code = obs_main(["trend", "--history", str(tmp_path / "nope.jsonl")])
        assert code == 2
        capsys.readouterr()

    def test_bad_rule_exit_2(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(path, [_row()])
        code = obs_main(
            ["trend", "--history", str(path), "--fail-on", "warp=9"]
        )
        assert code == 2
        capsys.readouterr()

    def test_render_trend_no_rows(self):
        assert "no benchmark history rows" in render_trend(
            {"baseline_k": 5, "groups": [], "latest_key": None}
        )

    def test_committed_history_parses(self, capsys):
        # The repo's own BENCH_history.jsonl must stay loadable: CI gates
        # against it on every build.
        from pathlib import Path

        repo_history = Path(__file__).resolve().parents[2] / "BENCH_history.jsonl"
        rows = load_history(repo_history)
        assert len(rows) >= 2
        report = trend_report(rows)
        assert report["groups"]
