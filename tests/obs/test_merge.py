"""Tests for the deterministic per-worker run-fragment merge."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.merge import MERGE_RECORD_NAME, MergeError, merge_runs
from repro.obs.sink import TELEMETRY_NAME
from repro.obs.timeseries import DAYLEDGER_NAME, DayLedger, load_rows


def _span(span_id, name, parent=None, worker=None, dur=0.5):
    event = {
        "t": 1.0,
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "start": 0.5,
        "dur": dur,
        "attrs": {},
    }
    if worker is not None:
        event["w"] = worker
    return event


def _metrics(counters, t=9.0, worker=None):
    event = {
        "t": t,
        "kind": "metrics",
        "data": {"counters": counters, "gauges": {}, "histograms": {}},
    }
    if worker is not None:
        event["w"] = worker
    return event


def _write_fragment(root, name, events, ledger=None):
    frag = root / name
    frag.mkdir(parents=True, exist_ok=True)
    if events is not None:
        (frag / TELEMETRY_NAME).write_text(
            "\n".join(json.dumps(e, separators=(",", ":")) for e in events)
            + "\n"
        )
    if ledger is not None:
        ledger.flush(frag / DAYLEDGER_NAME)
    return frag


def _ledger(days=3, clicks=10.0, registrations=(5, 2)):
    ledger = DayLedger(days=days)
    for day in range(days):
        ledger.record_registrations(day, *registrations)
        ledger.begin_day(day)
        ledger.record_auction_day(
            day,
            impressions=100.0,
            clicks=clicks,
            fraud_clicks=1.0,
            spend=4.0,
            fraud_spend=0.5,
            rows=8,
            auctions=4,
            mainline_slots=6,
        )
    ledger.record_shutdown(1.5, "csr")
    return ledger


class TestIdentityMerge:
    def test_single_fragment_copies_bytes_verbatim(self, tmp_path):
        frag = _write_fragment(
            tmp_path, "run-a",
            [_span(1, "runner.run"), _metrics({"x": 1})],
            ledger=_ledger(),
        )
        out = tmp_path / "merged"
        record = merge_runs([frag], out)
        assert (out / TELEMETRY_NAME).read_bytes() == (
            frag / TELEMETRY_NAME
        ).read_bytes()
        assert (out / DAYLEDGER_NAME).read_bytes() == (
            frag / DAYLEDGER_NAME
        ).read_bytes()
        assert record["workers"] == ["w0"]
        assert json.loads((out / MERGE_RECORD_NAME).read_text()) == record


class TestMultiWorkerTelemetry:
    def _fragments(self, tmp_path):
        a = _write_fragment(
            tmp_path, "frag-a",
            [_span(1, "runner.run", worker="w0"),
             _span(2, "phase3.auctions", parent=1, worker="w0"),
             _metrics({"rows": 10}, worker="w0")],
        )
        b = _write_fragment(
            tmp_path, "frag-b",
            [_span(1, "runner.run", worker="w1"),
             _span(2, "phase3.auctions", parent=1, worker="w1"),
             _metrics({"rows": 32}, t=11.0, worker="w1")],
        )
        return a, b

    def test_merge_is_input_order_independent(self, tmp_path):
        a, b = self._fragments(tmp_path)
        merge_runs([a, b], tmp_path / "ab")
        merge_runs([b, a], tmp_path / "ba")
        assert (tmp_path / "ab" / TELEMETRY_NAME).read_bytes() == (
            tmp_path / "ba" / TELEMETRY_NAME
        ).read_bytes()
        assert (tmp_path / "ab" / MERGE_RECORD_NAME).read_bytes() == (
            tmp_path / "ba" / MERGE_RECORD_NAME
        ).read_bytes()

    def test_span_ids_offset_past_earlier_workers(self, tmp_path):
        a, b = self._fragments(tmp_path)
        merge_runs([b, a], tmp_path / "merged")
        events = [
            json.loads(line)
            for line in (tmp_path / "merged" / TELEMETRY_NAME)
            .read_text()
            .splitlines()
        ]
        spans = [e for e in events if e["kind"] == "span"]
        ids = [s["id"] for s in spans]
        assert len(set(ids)) == len(ids)
        w1_spans = [s for s in spans if s["w"] == "w1"]
        # w0's max id is 2, so w1's spans moved to 3 and 4 with the
        # parent pointer following.
        assert [s["id"] for s in w1_spans] == [3, 4]
        assert w1_spans[1]["parent"] == 3

    def test_merged_metrics_snapshot_appended(self, tmp_path):
        a, b = self._fragments(tmp_path)
        merge_runs([a, b], tmp_path / "merged")
        events = [
            json.loads(line)
            for line in (tmp_path / "merged" / TELEMETRY_NAME)
            .read_text()
            .splitlines()
        ]
        snapshots = [e for e in events if e["kind"] == "metrics"]
        combined = snapshots[-1]
        assert "w" not in combined
        assert combined["data"]["counters"] == {"rows": 42}
        assert combined["data"]["workers"] == ["w0", "w1"]
        assert combined["t"] == 11.0

    def test_untagged_fragments_get_positional_worker_ids(self, tmp_path):
        a = _write_fragment(tmp_path, "frag-a", [_span(1, "runner.run")])
        b = _write_fragment(tmp_path, "frag-b", [_span(1, "runner.run")])
        record = merge_runs([b, a], tmp_path / "merged")
        assert record["workers"] == ["w0", "w1"]
        # Positional over directory-name order, not argument order.
        assert [p.endswith(n) for p, n in zip(
            record["inputs"], ("frag-a", "frag-b")
        )] == [True, True]

    def test_duplicate_worker_ids_refuse(self, tmp_path):
        a = _write_fragment(
            tmp_path, "frag-a", [_span(1, "runner.run", worker="w1")]
        )
        b = _write_fragment(
            tmp_path, "frag-b", [_span(1, "runner.run", worker="w1")]
        )
        with pytest.raises(MergeError, match="duplicate worker ids"):
            merge_runs([a, b], tmp_path / "merged")

    def test_malformed_fragment_refuses_with_location(self, tmp_path):
        frag = tmp_path / "frag-a"
        frag.mkdir()
        (frag / TELEMETRY_NAME).write_text("garbage\n")
        with pytest.raises(MergeError, match=":1:"):
            merge_runs([frag], tmp_path / "merged")


class TestLedgerMerge:
    def test_days_sum_and_derived_fields_recompute(self, tmp_path):
        a = _write_fragment(
            tmp_path, "frag-a",
            [_span(1, "runner.run", worker="w0")],
            ledger=_ledger(clicks=10.0),
        )
        b = _write_fragment(
            tmp_path, "frag-b",
            [_span(1, "runner.run", worker="w1")],
            ledger=_ledger(clicks=30.0),
        )
        merge_runs([a, b], tmp_path / "merged")
        rows = load_rows(tmp_path / "merged" / DAYLEDGER_NAME)
        assert len(rows) == 3
        day0 = rows[0]
        assert day0["registrations_legit"] == 10
        assert day0["clicks"] == 40.0
        assert day0["spend"] == 8.0
        assert day0["rows"] == 16
        # Derived ratios recomputed from the sums, not averaged.
        assert day0["mean_cpc"] == pytest.approx(8.0 / 40.0)
        assert day0["fraud_click_share"] == pytest.approx(2.0 / 40.0)
        assert day0["mainline_depth"] == pytest.approx(12 / 8)
        assert rows[1]["shutdowns"] == {"csr": 2}

    def test_ledger_merge_order_independent(self, tmp_path):
        a = _write_fragment(
            tmp_path, "frag-a", [_span(1, "r", worker="w0")],
            ledger=_ledger(clicks=10.0),
        )
        b = _write_fragment(
            tmp_path, "frag-b", [_span(1, "r", worker="w1")],
            ledger=_ledger(clicks=30.0),
        )
        merge_runs([a, b], tmp_path / "ab")
        merge_runs([b, a], tmp_path / "ba")
        assert (tmp_path / "ab" / DAYLEDGER_NAME).read_bytes() == (
            tmp_path / "ba" / DAYLEDGER_NAME
        ).read_bytes()

    def test_telemetry_only_fragments_skip_ledger(self, tmp_path):
        a = _write_fragment(tmp_path, "frag-a", [_span(1, "r", worker="w0")])
        b = _write_fragment(tmp_path, "frag-b", [_span(1, "r", worker="w1")])
        record = merge_runs([a, b], tmp_path / "merged")
        assert record["ledger_days"] == 0
        assert not (tmp_path / "merged" / DAYLEDGER_NAME).exists()


class TestMergeCli:
    def test_cli_merges_and_reports(self, tmp_path, capsys):
        a = _write_fragment(
            tmp_path, "frag-a", [_span(1, "r", worker="w0")],
            ledger=_ledger(),
        )
        b = _write_fragment(
            tmp_path, "frag-b", [_span(1, "r", worker="w1")],
            ledger=_ledger(),
        )
        out = tmp_path / "merged"
        assert obs_main(
            ["merge", str(a), str(b), "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "2 fragment(s)" in stdout
        assert (out / TELEMETRY_NAME).exists()

    def test_cli_missing_input_exits_2(self, tmp_path):
        assert obs_main(
            ["merge", str(tmp_path / "nope"), "--out", str(tmp_path / "out")]
        ) == 2
