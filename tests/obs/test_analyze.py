"""Tests for ledger anomaly / change-point detection (``repro.obs analyze``)."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.analyze import (
    ANALYZE_NAME,
    ANALYZE_SCHEMA,
    analysis_json,
    analyze_rows,
    analyze_run,
    detect_anomalies,
    detect_level_shifts,
    evaluate_analyze_fail_on,
    parse_analyze_fail_on,
    policy_effects,
    rolling_mad_scores,
)
from repro.obs.diff import _window_means
from repro.obs.timeseries import DAYLEDGER_NAME, DayLedger, rows_to_series

from .test_diff import make_run


def _spiked_ledger(days=40, spike_day=35, policy_day=None) -> DayLedger:
    """Constant marketplace with one click spike (and optional policy day)."""
    ledger = DayLedger(days=days)
    if policy_day is not None:
        ledger.record_policy_change(policy_day)
    for day in range(days):
        ledger.record_registrations(day, 5, 2)
        ledger.begin_day(day)
        ledger.record_auction_day(
            day,
            impressions=100.0,
            clicks=500.0 if day == spike_day else 10.0,
            fraud_clicks=1.0,
            spend=4.0,
            fraud_spend=0.5,
            rows=8,
            auctions=3,
            mainline_slots=5,
        )
    return ledger


class TestDetectors:
    def test_rolling_scores_skip_warmup_window(self):
        scores = rolling_mad_scores([1.0, 2.0] * 10, window=5)
        assert scores[:5] == [None] * 5
        assert all(s is not None for s in scores[5:])

    def test_spike_scores_high_against_noisy_baseline(self):
        values = [1.0, 2.0] * 5 + [50.0]
        anomalies = detect_anomalies(values, window=10)
        assert [a["day"] for a in anomalies] == [10]
        assert anomalies[0]["value"] == 50.0
        assert anomalies[0]["z"] > 3.5

    def test_sparse_series_uses_meanad_fallback_not_inf(self):
        # More than half the window is 0 so the MAD vanishes; the mean-AD
        # fallback must keep the score finite (and still anomalous).
        values = [0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0]
        anomalies = detect_anomalies(values, window=10)
        assert [a["day"] for a in anomalies] == [10]
        z = anomalies[0]["z"]
        assert isinstance(z, float) and z > 3.5

    def test_constant_window_scores_inf_as_string(self):
        # An exactly-flat window makes any deviation maximally surprising;
        # the sentinel is serialized as a string for strict-JSON documents.
        anomalies = detect_anomalies([2.0] * 10 + [3.0], window=10)
        assert [a["day"] for a in anomalies] == [10]
        assert anomalies[0]["z"] == "inf"
        json.dumps(anomalies)  # strict JSON (no Infinity literal)

    def test_level_shift_reports_first_day_of_new_regime(self):
        values = [0.0] * 20 + [5.0] * 20
        shifts = detect_level_shifts(values, window=5)
        assert [s["day"] for s in shifts] == [20]
        assert shifts[0]["pre_mean"] == 0.0
        assert shifts[0]["post_mean"] == 5.0
        # Constant-vs-constant regimes hit the jump/100 floor: large but
        # finite, never an epsilon-driven 1e12 blowup.
        assert shifts[0]["score"] == 100.0

    def test_no_shift_on_flat_series(self):
        assert detect_level_shifts([3.0] * 40, window=5) == []


class TestPolicyEffects:
    def test_effect_sizes_match_diff_window_means(self):
        rows = _spiked_ledger(days=70, spike_day=32, policy_day=30).rows()
        effects = policy_effects(rows)
        assert list(effects) == ["30"]
        expected = _window_means(rows_to_series(rows), 30)
        for name, (pre, post) in expected.items():
            effect = effects["30"][name]
            assert effect["pre_mean"] == pre
            assert effect["post_mean"] == post
            assert effect["delta"] == post - pre

    def test_relative_none_when_pre_mean_zero(self):
        ledger = DayLedger(days=60)
        ledger.record_policy_change(30)
        for day in range(60):
            ledger.record_registrations(day, 1, 1 if day >= 30 else 0)
        effects = policy_effects(ledger.rows())
        fraud = effects["30"]["registrations_fraud"]
        assert fraud["pre_mean"] == 0.0
        assert fraud["relative"] is None


class TestAnalyzeRows:
    def test_document_shape_and_near_policy_totals(self):
        rows = _spiked_ledger(days=70, spike_day=32, policy_day=30).rows()
        document = analyze_rows(rows)
        assert document["schema"] == ANALYZE_SCHEMA
        assert document["days"] == 70
        assert document["policy_days"] == [30]
        # The spike sits in the policy settling window: reported but not
        # counted as unexplained.
        assert document["totals"]["anomalies"] > 0
        assert document["totals"]["unexplained_anomalies"] == 0
        spikes = document["anomalies"]["clicks"]
        assert [a["day"] for a in spikes] == [32]
        assert spikes[0]["near_policy"] is True

    def test_spike_without_policy_day_is_unexplained(self):
        rows = _spiked_ledger(days=40, spike_day=35).rows()
        document = analyze_rows(rows)
        assert document["policy_days"] == []
        assert (
            document["totals"]["unexplained_anomalies"]
            == document["totals"]["anomalies"]
            > 0
        )

    def test_document_is_strict_json_and_deterministic(self):
        rows = _spiked_ledger(days=40, spike_day=35).rows()
        text = analysis_json(analyze_rows(rows))
        assert text == analysis_json(analyze_rows(rows))
        json.loads(text)  # round-trips


class TestFailOn:
    def test_parse_rules(self):
        rules = parse_analyze_fail_on(["anomalies=0,level_shifts=2"])
        assert rules == {"anomalies": 0.0, "level_shifts": 2.0}
        with pytest.raises(ValueError, match="unknown"):
            parse_analyze_fail_on(["bogus=1"])
        with pytest.raises(ValueError, match="must be name=N"):
            parse_analyze_fail_on(["anomalies"])
        with pytest.raises(ValueError, match="not a number"):
            parse_analyze_fail_on(["anomalies=lots"])

    def test_gate_budgets_unexplained_only(self):
        explained = analyze_rows(
            _spiked_ledger(days=70, spike_day=32, policy_day=30).rows()
        )
        assert evaluate_analyze_fail_on(explained, {"anomalies": 0}) == []
        unexplained = analyze_rows(_spiked_ledger(days=40, spike_day=35).rows())
        violations = evaluate_analyze_fail_on(unexplained, {"anomalies": 0})
        assert violations and "unexplained" in violations[0]


class TestCli:
    def test_analyze_writes_artifact_and_leaves_run_untouched(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        (run_dir / "rng_state.json").write_text('{"stream":"philox","state":7}')
        before = {
            p.name: p.read_bytes() for p in run_dir.iterdir() if p.is_file()
        }

        assert obs_main(["analyze", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert f"wrote analysis -> {run_dir / ANALYZE_NAME}" in out
        document = json.loads((run_dir / ANALYZE_NAME).read_text())
        assert document["schema"] == ANALYZE_SCHEMA
        # No run-dir echo in the artifact: identical ledgers in
        # differently-named directories must produce identical bytes.
        assert "source" not in document
        # Pure observer: every pre-existing artifact (manifest, ledger,
        # telemetry, serialized RNG state) stays byte-identical.
        for name, payload in before.items():
            assert (run_dir / name).read_bytes() == payload

    def test_artifact_bytes_independent_of_gate_flags(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        assert obs_main(["analyze", str(run_dir)]) == 0
        first = (run_dir / ANALYZE_NAME).read_bytes()
        # A failing gate changes the exit code, never the artifact.
        assert obs_main(["analyze", str(run_dir), "--fail-on", "anomalies=0"]) == 1
        assert (run_dir / ANALYZE_NAME).read_bytes() == first
        capsys.readouterr()

    def test_identical_ledgers_give_identical_bytes_across_dirs(
        self, tmp_path, capsys
    ):
        # The CI gate cmps the fresh and resumed-after-crash runs'
        # analyses -- same ledger, different directory names.
        run_a = make_run(tmp_path, "fresh", ledger=_spiked_ledger())
        run_b = make_run(tmp_path, "resumed", ledger=_spiked_ledger())
        assert obs_main(["analyze", str(run_a)]) == 0
        assert obs_main(["analyze", str(run_b)]) == 0
        assert (run_a / ANALYZE_NAME).read_bytes() == (
            run_b / ANALYZE_NAME
        ).read_bytes()
        capsys.readouterr()

    def test_json_stdout_is_pure_document(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        code = obs_main(
            ["analyze", str(run_dir), "--json", "--fail-on", "anomalies=0"]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["totals"]["unexplained_anomalies"] > 0

    def test_out_redirects_artifact(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a", ledger=_spiked_ledger())
        target = tmp_path / "elsewhere.json"
        assert obs_main(["analyze", str(run_dir), "--out", str(target)]) == 0
        assert target.exists()
        assert not (run_dir / ANALYZE_NAME).exists()
        capsys.readouterr()

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        run_dir = tmp_path / "empty"
        run_dir.mkdir()
        assert obs_main(["analyze", str(run_dir)]) == 2
        with pytest.raises(FileNotFoundError):
            analyze_run(run_dir)
        capsys.readouterr()

    def test_bad_rule_exits_2(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a")
        assert obs_main(["analyze", str(run_dir), "--fail-on", "bogus=1"]) == 2
        capsys.readouterr()

    def test_damaged_ledger_exits_2(self, tmp_path, capsys):
        run_dir = make_run(tmp_path, "a")
        (run_dir / DAYLEDGER_NAME).write_text('not json\n{"day":1}\n')
        assert obs_main(["analyze", str(run_dir)]) == 2
        capsys.readouterr()
