"""Pre-columnar run directories through report / registry / diff.

Run directories written before the columnar chunk store have npz
chunks, a ``MANIFEST.json`` without the ``chunk_format`` key, and a
telemetry span tree using the retired per-day Phase-1 layout
(``phase1.day``).  The observability tooling must keep rendering them
-- with an explicit notice, never a crash -- and must stay comparable
against modern run directories.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.diff import diff_runs, evaluate_fail_on, load_run, render_diff
from repro.obs.registry import index_runs, summarize_run
from repro.obs.report import aggregate_spans, load_events, render_report

from .test_diff import make_run


def _span(sid, parent, name, dur=0.1):
    return {"kind": "span", "id": sid, "parent": parent, "name": name,
            "dur": dur, "attrs": {}}


def _write_telemetry(run_dir: Path, events: list[dict]) -> None:
    (run_dir / "telemetry.jsonl").write_text(
        "\n".join(json.dumps(e, separators=(",", ":")) for e in events) + "\n"
    )


def make_legacy_run(root: Path, name: str) -> Path:
    """A pre-columnar run dir: old span tree, no manifest chunk_format."""
    run_dir = make_run(root, name)
    manifest_path = run_dir / "MANIFEST.json"
    payload = json.loads(manifest_path.read_text())
    assert "chunk_format" not in payload  # make_run predates the key too
    payload["chunks"] = [
        {"file": "chunks/chunk-00000-00004.npz", "day_start": 0,
         "day_end": 4, "rows": 10, "sha256": "0" * 64, "rng_after": {}}
    ]
    manifest_path.write_text(json.dumps(payload))
    _write_telemetry(run_dir, [
        _span(1, None, "runner.run", dur=3.0),
        _span(2, 1, "phase1.population", dur=1.0),
        *[_span(10 + d, 2, "phase1.day", dur=0.1) for d in range(4)],
        _span(30, 1, "phase3.auctions", dur=2.0),
    ])
    return run_dir


def make_modern_run(root: Path, name: str) -> Path:
    """A columnar-era run dir: draws/build spans, chunk_format pinned."""
    run_dir = make_run(root, name)
    manifest_path = run_dir / "MANIFEST.json"
    payload = json.loads(manifest_path.read_text())
    payload["chunk_format"] = "columnar"
    payload["chunks"] = [
        {"file": "chunks/chunk-00000-00004.npc", "day_start": 0,
         "day_end": 4, "rows": 10, "sha256": "0" * 64, "rng_after": {}}
    ]
    manifest_path.write_text(json.dumps(payload))
    _write_telemetry(run_dir, [
        _span(1, None, "runner.run", dur=3.0),
        _span(2, 1, "phase1.population", dur=1.0),
        _span(3, 2, "phase1.draws", dur=0.8),
        _span(4, 2, "phase1.build", dur=0.2),
        _span(30, 1, "phase3.auctions", dur=2.0),
    ])
    return run_dir


class TestReport:
    def test_legacy_span_tree_renders_with_notice(self, tmp_path):
        run_dir = make_legacy_run(tmp_path, "old")
        events = load_events(run_dir / "telemetry.jsonl")
        report = render_report(events, source=run_dir)
        assert "phase1.day" in report
        assert "legacy per-day phase1 span layout" in report
        # The old tree still aggregates: four day spans under phase1.
        spans = aggregate_spans(events)
        key = ("runner.run", "phase1.population", "phase1.day")
        assert spans[key]["count"] == 4

    def test_modern_span_tree_has_no_notice(self, tmp_path):
        run_dir = make_modern_run(tmp_path, "new")
        report = render_report(load_events(run_dir / "telemetry.jsonl"))
        assert "phase1.draws" in report
        assert "legacy" not in report


class TestRegistry:
    def test_legacy_manifest_summarizes_as_npz(self, tmp_path):
        summary = summarize_run(make_legacy_run(tmp_path, "old"))
        assert summary["chunk_format"] == "npz"
        assert summary["chunks"] == 1
        assert summary["rows"] == 10
        assert summary["phases_s"]["phase1.population"] > 0

    def test_modern_manifest_keeps_its_format(self, tmp_path):
        summary = summarize_run(make_modern_run(tmp_path, "new"))
        assert summary["chunk_format"] == "columnar"

    def test_mixed_index_lists_both(self, tmp_path):
        make_legacy_run(tmp_path, "old")
        make_modern_run(tmp_path, "new")
        index = index_runs(tmp_path)
        formats = {r["dir"]: r["chunk_format"] for r in index["runs"]}
        assert formats == {"old": "npz", "new": "columnar"}


class TestDiff:
    def test_legacy_vs_modern_diffs_cleanly(self, tmp_path):
        a = load_run(make_legacy_run(tmp_path, "old"))
        b = load_run(make_modern_run(tmp_path, "new"))
        assert a.chunk_format == "npz"
        assert b.chunk_format == "columnar"
        diff = diff_runs(a, b)
        # Same synthesized ledger -> same-seed semantics hold across
        # formats and span layouts.
        assert evaluate_fail_on(diff, {"drift": 0.0}) == []
        text = render_diff(diff)
        assert "chunk formats differ (a: npz, b: columnar)" in text
        assert "format-independent" in text

    def test_same_format_runs_have_no_format_note(self, tmp_path):
        a = load_run(make_modern_run(tmp_path, "x"))
        b = load_run(make_modern_run(tmp_path, "y"))
        assert "chunk formats differ" not in render_diff(diff_runs(a, b))
