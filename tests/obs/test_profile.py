"""Tests for the opt-in cProfile hooks (``REPRO_PROFILE``)."""

from __future__ import annotations

import pstats

import pytest

from repro.config import small_config
from repro.obs.profile import PROFILE_ENV, maybe_profile, profiling_enabled
from repro.simulator.engine import SimulationEngine


class TestProfilingEnabled:
    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(PROFILE_ENV, value)
        assert not profiling_enabled()

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profiling_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "anything"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(PROFILE_ENV, value)
        assert profiling_enabled()


class TestMaybeProfile:
    def test_disabled_is_inert_and_writes_nothing(self, monkeypatch, tmp_path):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        with maybe_profile("phase1", tmp_path) as profile:
            assert profile is None
        assert list(tmp_path.iterdir()) == []

    def test_enabled_dumps_a_loadable_profile(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_ENV, "1")
        with maybe_profile("phase1", tmp_path) as profile:
            assert profile is not None
            sum(range(1000))
        dump = tmp_path / "phase1.prof"
        assert dump.exists()
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0

    def test_enabled_creates_missing_directories(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_ENV, "1")
        nested = tmp_path / "deep" / "run"
        with maybe_profile("phase3", nested):
            pass
        assert (nested / "phase3.prof").exists()

    def test_dump_lands_even_when_the_block_raises(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(PROFILE_ENV, "1")
        with pytest.raises(RuntimeError):
            with maybe_profile("phase1", tmp_path):
                raise RuntimeError("simulated crash")
        assert (tmp_path / "phase1.prof").exists()


class TestProfilingDeterminism:
    def test_profiled_run_is_bit_identical(self, monkeypatch, tmp_path):
        # The profiler observes frames, never the named RNG streams: a
        # profiled run must finish with identical serialized RNG states.
        config = small_config(seed=13, days=20)
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        engine = SimulationEngine(config)
        plain = engine.run()
        plain_rng = engine.rng_state()

        monkeypatch.setenv(PROFILE_ENV, "1")
        engine = SimulationEngine(config)
        with maybe_profile("whole-run", tmp_path):
            profiled = engine.run()
        assert engine.rng_state() == plain_rng
        assert len(profiled.impressions) == len(plain.impressions)
        assert profiled.detections == plain.detections
        assert (tmp_path / "whole-run.prof").exists()
