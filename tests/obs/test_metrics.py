"""Unit tests for counters, gauges, histograms, and the registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestMetricObjects:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25

    def test_histogram_buckets_values(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)   # <= 1.0
        hist.observe(10.0)  # <= 10.0 (upper bound inclusive)
        hist.observe(99.0)  # overflow
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.mean == pytest.approx((0.5 + 10.0 + 99.0) / 3)

    def test_histogram_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="Counter"):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("rate").set(7.5)
        registry.histogram("sizes", DEFAULT_SIZE_BUCKETS).observe(42)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["gauges"] == {"rate": 7.5}
        assert snap["histograms"]["sizes"]["count"] == 1
        json.dumps(snap)  # must serialize without a custom encoder

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        hist = registry.histogram("h")
        counter.inc(9)
        hist.observe(1.0)
        registry.reset()
        # The *same* handles read zero -- module-level handles survive.
        assert counter.value == 0
        assert hist.count == 0
        assert registry.counter("n") is counter
