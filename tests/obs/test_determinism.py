"""The hard invariant: telemetry never perturbs the simulation.

Every stochastic draw comes from the five named RNG streams;
``repro.obs`` must not touch them.  A run traced through the JSONL
sink therefore has to be *bit-identical* to an untraced run -- same
impression bytes, same detections, and the same serialized RNG states
at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.config import small_config
from repro.obs.progress import ProgressSink
from repro.obs.resources import ResourceSampler
from repro.obs.sink import JsonlSink
from repro.simulator.engine import SimulationEngine


@pytest.fixture(scope="module")
def config():
    return small_config(seed=11, days=40)


def _run(config, sink=None):
    engine = SimulationEngine(config)
    if sink is not None:
        obs.add_sink(sink)
    try:
        result = engine.run()
    finally:
        if sink is not None:
            obs.remove_sink(sink)
    return result, engine.rng_state()


def test_traced_run_is_bit_identical(config, tmp_path):
    plain_result, plain_rng = _run(config)
    sink = JsonlSink(tmp_path / "telemetry.jsonl")
    traced_result, traced_rng = _run(config, sink=sink)
    sink.flush()

    for name in plain_result.impressions.field_names():
        want = getattr(plain_result.impressions, name)
        got = getattr(traced_result.impressions, name)
        assert got.dtype == want.dtype, name
        assert np.array_equal(got, want), f"column {name} differs"
    assert traced_result.detections == plain_result.detections
    assert traced_result.policy_changes == plain_result.policy_changes
    # Identical *serialized* RNG states: not a single extra draw.
    assert traced_rng == plain_rng
    # And the trace actually captured the run.
    assert len(sink) > 0


def test_sampler_and_sidecar_active_run_is_bit_identical(config, tmp_path):
    """The live-telemetry layer (resource sampler thread + progress
    sidecar + JSONL sink, all at once) must not move a single draw on
    any of the five named RNG streams."""
    plain_result, plain_rng = _run(config)

    sampler = ResourceSampler(interval_s=0.005)
    sampler.start()
    sinks = [
        JsonlSink(tmp_path / "telemetry.jsonl"),
        ProgressSink(tmp_path, days=config.days),
    ]
    engine = SimulationEngine(config)
    for sink in sinks:
        obs.add_sink(sink)
    try:
        sampler.set_phase("phase1")
        live_result = engine.run()
    finally:
        for sink in sinks:
            obs.remove_sink(sink)
        summary = sampler.stop()
    live_rng = engine.rng_state()
    sinks[0].flush()

    for name in plain_result.impressions.field_names():
        want = getattr(plain_result.impressions, name)
        got = getattr(live_result.impressions, name)
        assert np.array_equal(got, want), f"column {name} differs"
    assert live_result.detections == plain_result.detections
    # All five serialized stream states, not one extra draw anywhere.
    assert set(live_rng) == set(plain_rng)
    assert live_rng == plain_rng
    # The instruments actually observed the run.
    assert summary["overall"]["samples"] >= 2
    assert len(sinks[0]) > 0


def test_heartbeat_cadence_does_not_change_results(config, monkeypatch):
    monkeypatch.delenv(obs.HEARTBEAT_ENV, raising=False)
    _, default_rng = _run(config)
    monkeypatch.setenv(obs.HEARTBEAT_ENV, "1")
    with obs.capture() as sink:
        _, chatty_rng = _run(config)
    assert chatty_rng == default_rng
    heartbeats = [e for e in sink.events if e.get("name") == "heartbeat"]
    assert len(heartbeats) >= 2 * config.days - 2
