"""Tests for cross-run diffing and the ``--fail-on`` CI gate."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.diff import (
    diff_runs,
    evaluate_fail_on,
    load_run,
    parse_fail_on,
    render_diff,
)
from repro.obs.timeseries import DAYLEDGER_NAME, DayLedger


def _span(span_id, parent, name, dur):
    return {
        "t": 1.0,
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "start": 0.5,
        "dur": dur,
        "attrs": {},
    }


def _metrics(counters):
    return {
        "t": 9.0,
        "kind": "metrics",
        "data": {"counters": counters, "gauges": {}, "histograms": {}},
    }


def _ledger(days=4, clicks=10.0, policy_day=None) -> DayLedger:
    ledger = DayLedger(days=days)
    if policy_day is not None:
        ledger.record_policy_change(policy_day)
    for day in range(days):
        ledger.record_registrations(day, 5, 2)
        ledger.begin_day(day)
        ledger.record_auction_day(
            day,
            impressions=100.0,
            clicks=clicks,
            fraud_clicks=1.0,
            spend=4.0,
            fraud_spend=0.5,
            rows=8,
            auctions=3,
            mainline_slots=5,
        )
    return ledger


def make_run(
    root: Path,
    name: str,
    *,
    phase3_s: float = 2.0,
    counters: dict | None = None,
    ledger: DayLedger | None = None,
    validation_ok: tuple[str, ...] = ("fraud_share", "cpc"),
    validation_miss: tuple[str, ...] = (),
    rss_peak_kb: float | None = None,
) -> Path:
    """Synthesize a minimal but complete run directory."""
    run_dir = root / name
    run_dir.mkdir(parents=True)
    (run_dir / "MANIFEST.json").write_text(
        json.dumps({"seed": 7, "days": 4, "phase": "complete", "chunks": []})
    )
    events = [
        _span(1, None, "runner.run", dur=phase3_s + 1.0),
        _span(2, 1, "phase1.population", dur=0.5),
        _span(3, 1, "phase3.auctions", dur=phase3_s),
        _metrics(counters or {"auction.rows_emitted": 100}),
    ]
    if rss_peak_kb is not None:
        events.append({
            "t": 9.5,
            "kind": "resources",
            "data": {
                "interval_s": 0.05,
                "overall": {"samples": 3, "rss_peak_kb": rss_peak_kb,
                            "rss_mean_kb": rss_peak_kb / 2, "cpu_s": 1.0,
                            "wall_s": 1.0, "cpu_utilization": 1.0,
                            "gc": {"collections": 0, "pause_total_s": 0.0,
                                   "pause_max_s": 0.0}},
                "phases": {},
            },
        })
    (run_dir / "telemetry.jsonl").write_text(
        "\n".join(json.dumps(e, separators=(",", ":")) for e in events) + "\n"
    )
    checks = [
        {"name": n, "ok": True, "measured": 1.0, "low": 0, "high": 2,
         "paper": "x", "section": "4"}
        for n in validation_ok
    ] + [
        {"name": n, "ok": False, "measured": 9.0, "low": 0, "high": 2,
         "paper": "x", "section": "4"}
        for n in validation_miss
    ]
    (run_dir / "validation.json").write_text(
        json.dumps({"schema": "repro.validation/v1", "passed": len(validation_ok),
                    "total": len(checks), "checks": checks})
    )
    (ledger or _ledger()).flush(run_dir / DAYLEDGER_NAME)
    return run_dir


class TestDiffRuns:
    def test_identical_runs_have_zero_divergence(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        diff = diff_runs(load_run(a), load_run(b))
        assert diff.series_divergence
        assert all(d == 0.0 for d in diff.series_divergence.values())
        assert diff.counter_deltas == {}
        assert diff.new_misses == []
        assert evaluate_fail_on(diff, parse_fail_on(["drift=0"])) == []

    def test_perturbed_ledger_fails_drift_zero(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b", ledger=_ledger(clicks=10.5))
        diff = diff_runs(load_run(a), load_run(b))
        assert diff.series_divergence["clicks"] > 0
        violations = evaluate_fail_on(diff, {"drift": 0.0})
        assert any("clicks" in v for v in violations)
        # A loose threshold tolerates the same perturbation.
        assert evaluate_fail_on(diff, {"drift": 0.1}) == []

    def test_day_count_mismatch_is_infinite_drift(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b", ledger=_ledger(days=3))
        diff = diff_runs(load_run(a), load_run(b))
        assert diff.series_divergence["__days__"] == math.inf
        violations = evaluate_fail_on(diff, {"drift": 1e9})
        assert any("__days__" in v for v in violations)

    def test_phase_regression_fails_phase_time(self, tmp_path):
        a = make_run(tmp_path, "a", phase3_s=2.0)
        b = make_run(tmp_path, "b", phase3_s=3.0)  # +50%
        diff = diff_runs(load_run(a), load_run(b))
        violations = evaluate_fail_on(diff, {"phase_time": 0.25})
        assert any("phase3.auctions" in v for v in violations)
        assert evaluate_fail_on(diff, {"phase_time": 0.6}) == []

    def test_speedup_never_violates_phase_time(self, tmp_path):
        a = make_run(tmp_path, "a", phase3_s=3.0)
        b = make_run(tmp_path, "b", phase3_s=2.0)
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, {"phase_time": 0.0}) == []

    def test_new_validation_miss_fails_budget(self, tmp_path):
        a = make_run(tmp_path, "a", validation_ok=("fraud_share", "cpc"))
        b = make_run(
            tmp_path, "b",
            validation_ok=("cpc",), validation_miss=("fraud_share",),
        )
        diff = diff_runs(load_run(a), load_run(b))
        assert diff.new_misses == ["fraud_share"]
        violations = evaluate_fail_on(diff, {"validation": 0.0})
        assert any("fraud_share" in v for v in violations)
        assert evaluate_fail_on(diff, {"validation": 1.0}) == []

    def test_counter_deltas_only_where_values_differ(self, tmp_path):
        a = make_run(tmp_path, "a", counters={"x": 1, "same": 5})
        b = make_run(tmp_path, "b", counters={"x": 2, "same": 5})
        diff = diff_runs(load_run(a), load_run(b))
        assert diff.counter_deltas == {"x": (1.0, 2.0)}

    def test_ledger_missing_one_side_violates_drift(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        (b / DAYLEDGER_NAME).unlink()
        diff = diff_runs(load_run(a), load_run(b))
        violations = evaluate_fail_on(diff, {"drift": 0.0})
        assert len(violations) == 1
        assert "no readable" in violations[0]

    def test_ledger_missing_both_sides_skips_drift(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        (a / DAYLEDGER_NAME).unlink()
        (b / DAYLEDGER_NAME).unlink()
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, {"drift": 0.0}) == []

    def test_policy_windows_report_pre_post_means(self, tmp_path):
        a = make_run(tmp_path, "a", ledger=_ledger(policy_day=2))
        b = make_run(tmp_path, "b", ledger=_ledger(policy_day=2))
        diff = diff_runs(load_run(a), load_run(b))
        assert 2 in diff.policy_windows
        windows = diff.policy_windows[2]["clicks"]
        assert windows["a"] == windows["b"]
        assert windows["a"][1] == pytest.approx(10.0)
        assert "policy-change windows" in render_diff(diff)


class TestParseFailOn:
    def test_comma_and_repeat_forms(self):
        assert parse_fail_on(["drift=0,phase_time=0.25", "validation=1"]) == {
            "drift": 0.0,
            "phase_time": 0.25,
            "validation": 1.0,
        }

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown --fail-on rule"):
            parse_fail_on(["latency=3"])

    def test_missing_threshold_raises(self):
        with pytest.raises(ValueError, match="name=threshold"):
            parse_fail_on(["drift"])

    def test_non_numeric_threshold_raises(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_fail_on(["drift=tight"])


class TestDiffCli:
    def test_identical_runs_exit_0(self, tmp_path, capsys):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        code = obs_main(["diff", str(a), str(b), "--fail-on", "drift=0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok: 1 rule(s) held" in out

    def test_perturbed_run_exits_1(self, tmp_path, capsys):
        # Acceptance criterion: diff exits non-zero on a perturbed
        # ledger or timing.
        a = make_run(tmp_path, "a", phase3_s=2.0)
        b = make_run(
            tmp_path, "b", phase3_s=4.0, ledger=_ledger(clicks=11.0)
        )
        code = obs_main(
            ["diff", str(a), str(b),
             "--fail-on", "drift=0,phase_time=0.25"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL:" in out
        assert "drift" in out
        assert "phase_time" in out

    def test_bad_rule_exits_2(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        assert obs_main(["diff", str(a), str(b), "--fail-on", "bogus=1"]) == 2

    def test_missing_run_dir_exits_2(self, tmp_path):
        a = make_run(tmp_path, "a")
        assert obs_main(["diff", str(a), str(tmp_path / "nope")]) == 2

    def test_diff_without_rules_reports_and_exits_0(self, tmp_path, capsys):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b", ledger=_ledger(clicks=99.0))
        assert obs_main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "day-ledger series" in out


class TestDegradedRule:
    def test_undegraded_run_passes_budget_zero(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, parse_fail_on(["degraded=0"])) == []

    def test_degraded_counters_fail_budget(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(
            tmp_path, "b",
            counters={"io.degraded": 3, "io.giveups": 1},
        )
        diff = diff_runs(load_run(a), load_run(b))
        violations = evaluate_fail_on(diff, {"degraded": 0.0})
        assert violations and "degraded" in violations[0]
        # Four degradations fit inside a budget of four.
        assert evaluate_fail_on(diff, {"degraded": 4.0}) == []

    def test_degradation_in_a_does_not_count(self, tmp_path):
        # The rule gates the *candidate* run; a noisy baseline is not
        # the candidate's regression.
        a = make_run(tmp_path, "a", counters={"io.degraded": 9})
        b = make_run(tmp_path, "b")
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, {"degraded": 0.0}) == []

    def test_missing_telemetry_in_b_violates(self, tmp_path):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        (b / "telemetry.jsonl").unlink()
        diff = diff_runs(load_run(a), load_run(b))
        violations = evaluate_fail_on(diff, {"degraded": 0.0})
        assert violations and "telemetry" in violations[0]


class TestRssRule:
    def test_flat_memory_passes_tight_budget(self, tmp_path):
        a = make_run(tmp_path, "a", rss_peak_kb=100_000.0)
        b = make_run(tmp_path, "b", rss_peak_kb=100_000.0)
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, parse_fail_on(["rss=0"])) == []

    def test_growth_beyond_fraction_violates(self, tmp_path):
        a = make_run(tmp_path, "a", rss_peak_kb=100_000.0)
        b = make_run(tmp_path, "b", rss_peak_kb=110_000.0)  # +10%
        diff = diff_runs(load_run(a), load_run(b))
        violations = evaluate_fail_on(diff, {"rss": 0.05})
        assert violations and "rss" in violations[0]
        assert "peak RSS grew" in violations[0]
        # The same growth fits inside a 15% budget.
        assert evaluate_fail_on(diff, {"rss": 0.15}) == []

    def test_shrinking_memory_never_violates(self, tmp_path):
        a = make_run(tmp_path, "a", rss_peak_kb=110_000.0)
        b = make_run(tmp_path, "b", rss_peak_kb=100_000.0)
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, {"rss": 0.0}) == []

    def test_both_sides_without_envelope_skip(self, tmp_path):
        # Pre-sampler runs have no resources event: the rule cannot
        # apply, so it skips instead of failing retroactively.
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        diff = diff_runs(load_run(a), load_run(b))
        assert evaluate_fail_on(diff, {"rss": 0.0}) == []

    def test_one_side_without_envelope_violates(self, tmp_path):
        a = make_run(tmp_path, "a", rss_peak_kb=100_000.0)
        b = make_run(tmp_path, "b")
        diff = diff_runs(load_run(a), load_run(b))
        violations = evaluate_fail_on(diff, {"rss": 0.0})
        assert violations and "no resource envelope" in violations[0]

    def test_parse_accepts_rss(self):
        assert parse_fail_on(["rss=0.05"]) == {"rss": 0.05}

    def test_render_diff_shows_peak_rss_line(self, tmp_path):
        a = make_run(tmp_path, "a", rss_peak_kb=100_000.0)
        b = make_run(tmp_path, "b", rss_peak_kb=110_000.0)
        diff = diff_runs(load_run(a), load_run(b))
        assert "peak RSS" in render_diff(diff)

    def test_cli_rss_gate_exits_1_on_growth(self, tmp_path, capsys):
        a = make_run(tmp_path, "a", rss_peak_kb=100_000.0)
        b = make_run(tmp_path, "b", rss_peak_kb=150_000.0)
        code = obs_main(["diff", str(a), str(b), "--fail-on", "rss=0.1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "rss" in out


class TestDiffJson:
    def test_schema_and_sections(self, tmp_path):
        from repro.obs.diff import DIFF_SCHEMA, diff_json

        a = make_run(tmp_path, "a", rss_peak_kb=100_000.0,
                     ledger=_ledger(policy_day=2))
        b = make_run(tmp_path, "b", rss_peak_kb=100_000.0,
                     ledger=_ledger(policy_day=2))
        document = diff_json(diff_runs(load_run(a), load_run(b)))
        assert document["schema"] == DIFF_SCHEMA
        assert document["run_a"] == str(a) and document["run_b"] == str(b)
        assert document["phases_s"]["phase3.auctions"]["regression"] == 0.0
        assert document["series_divergence"]["clicks"] == 0.0
        assert "2" in document["policy_windows"]
        # No rules requested: the gate keys stay out of the document.
        assert "fail_on" not in document and "violations" not in document
        json.dumps(document)  # strict JSON

    def test_infinite_divergence_serializes_as_string(self, tmp_path):
        from repro.obs.diff import diff_json

        a = make_run(tmp_path, "a", ledger=_ledger(days=4))
        b = make_run(tmp_path, "b", ledger=_ledger(days=6))
        document = diff_json(diff_runs(load_run(a), load_run(b)))
        assert document["series_divergence"]["__days__"] == "inf"
        json.dumps(document)

    def test_cli_json_stdout(self, tmp_path, capsys):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        assert obs_main(["diff", str(a), str(b), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.diff/v1"

    def test_cli_json_out_writes_file(self, tmp_path, capsys):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        target = tmp_path / "diff.json"
        code = obs_main(["diff", str(a), str(b), "--json", "--out", str(target)])
        assert code == 0
        assert f"wrote diff -> {target}" in capsys.readouterr().out
        assert json.loads(target.read_text())["schema"] == "repro.diff/v1"

    def test_cli_out_without_json_exits_2(self, tmp_path, capsys):
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        target = tmp_path / "diff.json"
        assert obs_main(["diff", str(a), str(b), "--out", str(target)]) == 2
        assert not target.exists()
        capsys.readouterr()

    def test_cli_json_violation_exits_1_and_embeds_gate(self, tmp_path, capsys):
        a = make_run(tmp_path, "a", phase3_s=2.0)
        b = make_run(tmp_path, "b", phase3_s=4.0)
        code = obs_main(
            ["diff", str(a), str(b), "--json", "--fail-on", "phase_time=0.25"]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["fail_on"] == {"phase_time": 0.25}
        assert document["violations"]
        assert "phase3.auctions" in document["violations"][0]

    def test_text_output_unchanged_by_json_flag_absence(self, tmp_path, capsys):
        # The pre-existing text path still renders (no accidental JSON).
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        assert obs_main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("run diff: ")
        assert "phase timings" in out
