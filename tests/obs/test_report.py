"""Tests for telemetry loading/aggregation and the report CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    aggregate_spans,
    load_events,
    render_report,
    report_path,
)


def _span(span_id, parent, name, dur=0.5):
    return {
        "t": 1.0,
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "start": 0.5,
        "dur": dur,
        "attrs": {},
    }


def _write(path, events):
    path.write_text(
        "\n".join(json.dumps(e, separators=(",", ":")) for e in events) + "\n"
    )


class TestLoadEvents:
    def test_round_trips_jsonl(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        events = [_span(1, None, "run"), {"t": 2.0, "kind": "event", "name": "e", "attrs": {}}]
        _write(path, events)
        assert load_events(path) == events

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"kind":"span"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_events(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_events(path)

    def test_report_path_resolves_directories(self, tmp_path):
        assert report_path(tmp_path).name == "telemetry.jsonl"
        explicit = tmp_path / "other.jsonl"
        assert report_path(explicit) == explicit


class TestAggregateSpans:
    def test_name_paths_follow_parents(self):
        events = [
            _span(1, None, "run", dur=2.0),
            _span(2, 1, "phase", dur=1.0),
            _span(3, 2, "day", dur=0.4),
            _span(4, 2, "day", dur=0.6),
        ]
        agg = aggregate_spans(events)
        assert agg[("run",)]["count"] == 1
        assert agg[("run", "phase", "day")]["count"] == 2
        assert agg[("run", "phase", "day")]["total"] == pytest.approx(1.0)
        assert agg[("run", "phase", "day")]["max"] == pytest.approx(0.6)

    def test_orphaned_span_becomes_root(self):
        # Parent id 99 never reached the file (lost in a crash).
        agg = aggregate_spans([_span(1, 99, "day")])
        assert ("day",) in agg


class TestReportCli:
    def _sample_events(self):
        return [
            _span(1, None, "run", dur=2.0),
            _span(2, 1, "phase3.auctions", dur=1.5),
            {"t": 2.0, "kind": "event", "name": "runner.checkpoint",
             "attrs": {"day_end": 7}},
            {"t": 2.5, "kind": "metrics",
             "data": {"counters": {"auction.rows_emitted": 123},
                      "gauges": {}, "histograms": {}}},
        ]

    def test_report_renders_all_sections(self, tmp_path, capsys):
        _write(tmp_path / "telemetry.jsonl", self._sample_events())
        assert obs_main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "phase3.auctions" in out
        assert "runner.checkpoint x1" in out
        assert "auction.rows_emitted" in out
        assert "123" in out

    def test_report_accepts_explicit_file(self, tmp_path, capsys):
        path = tmp_path / "custom.jsonl"
        _write(path, self._sample_events())
        assert obs_main(["report", str(path)]) == 0
        assert "4 events" in capsys.readouterr().out

    def test_missing_telemetry_notices_and_exits_0(self, tmp_path, capsys):
        # Absent telemetry is a normal run state (telemetry=False), not
        # an error: a clear notice on stdout, exit 0, no traceback.
        assert obs_main(["report", str(tmp_path / "void")]) == 0
        out = capsys.readouterr().out
        assert "no telemetry" in out

    def test_missing_run_dir_file_notices_and_exits_0(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path)]) == 0
        assert "no telemetry" in capsys.readouterr().out

    def test_truncated_telemetry_notices_and_exits_0(self, tmp_path, capsys):
        # A torn/garbage file renders a notice naming the damage.
        path = tmp_path / "telemetry.jsonl"
        path.write_text("garbage\n")
        assert obs_main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no usable telemetry" in out
        assert "malformed" in out

    def test_render_report_mentions_source(self):
        text = render_report(self._sample_events(), source="RUNS/x")
        assert text.startswith("telemetry report: RUNS/x")
