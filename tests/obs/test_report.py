"""Tests for telemetry loading/aggregation and the report CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    REPORT_SCHEMA,
    aggregate_spans,
    last_resources,
    load_events,
    render_report,
    report_json,
    report_path,
)


def _span(span_id, parent, name, dur=0.5):
    return {
        "t": 1.0,
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "start": 0.5,
        "dur": dur,
        "attrs": {},
    }


def _write(path, events):
    path.write_text(
        "\n".join(json.dumps(e, separators=(",", ":")) for e in events) + "\n"
    )


class TestLoadEvents:
    def test_round_trips_jsonl(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        events = [_span(1, None, "run"), {"t": 2.0, "kind": "event", "name": "e", "attrs": {}}]
        _write(path, events)
        assert load_events(path) == events

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"kind":"span"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_events(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_events(path)

    def test_report_path_resolves_directories(self, tmp_path):
        assert report_path(tmp_path).name == "telemetry.jsonl"
        explicit = tmp_path / "other.jsonl"
        assert report_path(explicit) == explicit


class TestAggregateSpans:
    def test_name_paths_follow_parents(self):
        events = [
            _span(1, None, "run", dur=2.0),
            _span(2, 1, "phase", dur=1.0),
            _span(3, 2, "day", dur=0.4),
            _span(4, 2, "day", dur=0.6),
        ]
        agg = aggregate_spans(events)
        assert agg[("run",)]["count"] == 1
        assert agg[("run", "phase", "day")]["count"] == 2
        assert agg[("run", "phase", "day")]["total"] == pytest.approx(1.0)
        assert agg[("run", "phase", "day")]["max"] == pytest.approx(0.6)

    def test_orphaned_span_becomes_root(self):
        # Parent id 99 never reached the file (lost in a crash).
        agg = aggregate_spans([_span(1, 99, "day")])
        assert ("day",) in agg


class TestReportCli:
    def _sample_events(self):
        return [
            _span(1, None, "run", dur=2.0),
            _span(2, 1, "phase3.auctions", dur=1.5),
            {"t": 2.0, "kind": "event", "name": "runner.checkpoint",
             "attrs": {"day_end": 7}},
            {"t": 2.5, "kind": "metrics",
             "data": {"counters": {"auction.rows_emitted": 123},
                      "gauges": {}, "histograms": {}}},
        ]

    def test_report_renders_all_sections(self, tmp_path, capsys):
        _write(tmp_path / "telemetry.jsonl", self._sample_events())
        assert obs_main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "phase3.auctions" in out
        assert "runner.checkpoint x1" in out
        assert "auction.rows_emitted" in out
        assert "123" in out

    def test_report_accepts_explicit_file(self, tmp_path, capsys):
        path = tmp_path / "custom.jsonl"
        _write(path, self._sample_events())
        assert obs_main(["report", str(path)]) == 0
        assert "4 events" in capsys.readouterr().out

    def test_missing_telemetry_notices_and_exits_0(self, tmp_path, capsys):
        # Absent telemetry is a normal run state (telemetry=False), not
        # an error: a clear notice on stdout, exit 0, no traceback.
        assert obs_main(["report", str(tmp_path / "void")]) == 0
        out = capsys.readouterr().out
        assert "no telemetry" in out

    def test_missing_run_dir_file_notices_and_exits_0(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path)]) == 0
        assert "no telemetry" in capsys.readouterr().out

    def test_truncated_telemetry_notices_and_exits_0(self, tmp_path, capsys):
        # A torn/garbage file renders a notice naming the damage.
        path = tmp_path / "telemetry.jsonl"
        path.write_text("garbage\n")
        assert obs_main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no usable telemetry" in out
        assert "malformed" in out

    def test_render_report_mentions_source(self):
        text = render_report(self._sample_events(), source="RUNS/x")
        assert text.startswith("telemetry report: RUNS/x")


def _resources_event():
    stats = {
        "samples": 4, "rss_peak_kb": 2048.0, "rss_mean_kb": 1024.0,
        "cpu_s": 0.9, "wall_s": 1.0, "cpu_utilization": 0.9,
        "gc": {"collections": 3, "pause_total_s": 0.01, "pause_max_s": 0.005},
    }
    return {
        "t": 3.0,
        "kind": "resources",
        "data": {
            "interval_s": 0.05,
            "overall": stats,
            "phases": {"phase1": dict(stats)},
        },
    }


class TestResourcesSection:
    def test_last_resources_returns_final_payload(self):
        events = [_resources_event(), _resources_event()]
        events[1]["data"]["overall"]["samples"] = 9
        assert last_resources(events)["overall"]["samples"] == 9
        assert last_resources([]) is None

    def test_render_report_includes_resource_envelope(self):
        text = render_report([_resources_event()])
        assert "resources:" in text
        assert "rss peak 2.0M" in text
        assert "phase1" in text
        assert "gc 3x" in text


class TestReportJson:
    def _events(self):
        return [
            _span(1, None, "run", dur=2.0),
            _span(2, 1, "phase3.auctions", dur=1.5),
            {"t": 2.0, "kind": "event", "name": "heartbeat",
             "attrs": {"phase": "phase3", "day": 10}},
            {"t": 2.5, "kind": "metrics",
             "data": {"counters": {"rows": 5}, "gauges": {},
                      "histograms": {}}},
            _resources_event(),
        ]

    def test_document_covers_every_section(self):
        doc = report_json(self._events(), source="RUNS/x")
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["source"] == "RUNS/x"
        assert doc["events"] == 5
        paths = [s["path"] for s in doc["spans"]]
        assert "run/phase3.auctions" in paths
        assert doc["events_by_name"]["heartbeat"]["count"] == 1
        assert doc["metrics"]["counters"] == {"rows": 5}
        assert doc["resources"]["overall"]["rss_peak_kb"] == 2048.0

    def test_span_aggregates_round(self):
        doc = report_json([_span(1, None, "run", dur=1.0),
                           _span(2, None, "run", dur=3.0)])
        (record,) = doc["spans"]
        assert record["count"] == 2
        assert record["total_s"] == 4.0
        assert record["mean_s"] == 2.0
        assert record["max_s"] == 3.0

    def test_cli_json_prints_document(self, tmp_path, capsys):
        _write(tmp_path / "telemetry.jsonl", self._events())
        assert obs_main(["report", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == REPORT_SCHEMA

    def test_cli_json_out_writes_file(self, tmp_path, capsys):
        _write(tmp_path / "telemetry.jsonl", self._events())
        out = tmp_path / "report.json"
        assert obs_main(
            ["report", str(tmp_path), "--json", "--out", str(out)]
        ) == 0
        assert "wrote report" in capsys.readouterr().out
        assert json.loads(out.read_text())["schema"] == REPORT_SCHEMA

    def test_cli_out_without_json_is_an_error(self, tmp_path):
        _write(tmp_path / "telemetry.jsonl", self._events())
        assert obs_main(
            ["report", str(tmp_path), "--out", str(tmp_path / "r.json")]
        ) == 2
