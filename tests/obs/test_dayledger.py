"""Unit + invariant tests for the marketplace-health day ledger."""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.config import small_config
from repro.obs.timeseries import (
    DayLedger,
    load_rows,
    policy_days,
    rows_to_series,
)
from repro.records.impressions import ImpressionBuilder
from repro.simulator.engine import SimulationEngine
from repro.simulator.market import MarketIndex


@pytest.fixture(autouse=True)
def _no_leftover_ledger():
    """Every test starts and ends with no global ledger attached."""
    obs.set_dayledger(None)
    yield
    obs.set_dayledger(None)


@pytest.fixture
def propagate_repro_logs(monkeypatch):
    # The ``repro`` logger tree runs with propagate=False once its
    # handler is attached; let records reach caplog's root handler.
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)


class TestDayLedgerRows:
    def test_every_day_serializes_even_without_feeds(self):
        ledger = DayLedger(days=3)
        rows = ledger.rows()
        assert [row["day"] for row in rows] == [0, 1, 2]
        assert all(row["registrations_legit"] == 0 for row in rows)
        # No market row was opened, so no market/derived fields appear.
        assert "impressions" not in rows[0]

    def test_begin_day_zeroes_market_fields(self):
        ledger = DayLedger(days=2)
        ledger.begin_day(0)
        row = ledger.rows()[0]
        assert row["impressions"] == 0.0
        assert row["kernel_candidates"] == 0
        assert row["fraud_click_share"] == 0.0

    def test_derived_fields_recomputed_from_sums(self):
        ledger = DayLedger(days=1)
        ledger.begin_day(0)
        ledger.record_auction_day(
            0,
            impressions=100.0,
            clicks=10.0,
            fraud_clicks=4.0,
            spend=5.0,
            fraud_spend=1.0,
            rows=20,
            auctions=8,
            mainline_slots=12,
        )
        row = ledger.rows()[0]
        assert row["fraud_click_share"] == pytest.approx(0.4)
        assert row["fraud_spend_share"] == pytest.approx(0.2)
        assert row["mean_cpc"] == pytest.approx(0.5)
        assert row["mainline_depth"] == pytest.approx(1.5)

    def test_shutdowns_bucketed_and_clamped(self):
        ledger = DayLedger(days=5)
        ledger.record_shutdown(1.25, "content_filter")
        ledger.record_shutdown(1.99, "content_filter")
        ledger.record_shutdown(99.0, "behavioral")  # past the study end
        rows = ledger.rows()
        assert rows[1]["shutdowns"] == {"content_filter": 2}
        assert rows[4]["shutdowns"] == {"behavioral": 1}

    def test_kernel_feed_is_noop_without_open_day(self):
        ledger = DayLedger(days=1)
        ledger.record_kernel(10, 3)  # kernel-only unit tests do this
        assert "kernel_candidates" not in ledger.rows()[0]

    def test_policy_day_flag(self):
        ledger = DayLedger(days=3)
        ledger.record_policy_change(1.0)
        rows = ledger.rows()
        assert rows[1]["policy_change"] is True
        assert "policy_change" not in rows[0]
        assert policy_days(rows) == [1]


class TestSerialization:
    def _populated(self) -> DayLedger:
        ledger = DayLedger(days=3)
        ledger.record_registrations(0, 7, 5)
        ledger.record_shutdown(0.5, "registration_screen")
        ledger.record_policy_change(2)
        for day in range(3):
            ledger.begin_day(day)
            ledger.record_kernel(40 + day, 9)
            ledger.record_active_accounts(day, 11 + day)
            ledger.record_auction_day(
                day,
                impressions=1000.0 + day,
                clicks=10.5,
                fraud_clicks=0.5,
                spend=3.25,
                fraud_spend=0.125,
                rows=9,
                auctions=4,
                mainline_slots=6,
            )
        return ledger

    def test_jsonl_is_canonical_and_parseable(self, tmp_path):
        ledger = self._populated()
        path = tmp_path / "dayledger.jsonl"
        ledger.flush(path)
        rows = load_rows(path)
        assert len(rows) == 3
        # Canonical form: sorted keys, compact separators.
        line = path.read_text().splitlines()[0]
        assert line == json.dumps(
            rows[0], sort_keys=True, separators=(",", ":")
        )

    def test_flush_preload_flush_is_byte_identical(self, tmp_path):
        ledger = self._populated()
        path = tmp_path / "dayledger.jsonl"
        ledger.flush(path)
        original = path.read_bytes()

        reloaded = DayLedger(days=3)
        reloaded.preload(path, market_before=3)
        reloaded.flush(path)
        assert path.read_bytes() == original

    def test_preload_drops_market_fields_at_and_after_cutoff(self, tmp_path):
        ledger = self._populated()
        path = tmp_path / "dayledger.jsonl"
        ledger.flush(path)

        resumed = DayLedger(days=3)
        resumed.preload(path, market_before=2)
        rows = resumed.rows()
        # Phase-1 fields survive for every day...
        assert rows[0]["registrations_fraud"] == 5
        assert rows[2]["policy_change"] is True
        # ...market fields only before the cutoff.
        assert rows[1]["impressions"] == pytest.approx(1001.0)
        assert "impressions" not in rows[2]

    def test_preload_of_missing_file_is_noop(self, tmp_path):
        ledger = DayLedger(days=2)
        ledger.preload(tmp_path / "absent.jsonl", market_before=2)
        assert len(ledger.rows()) == 2

    def test_load_rows_rejects_interior_malformed_lines(self, tmp_path):
        # A malformed line *followed by* healthy rows cannot be a
        # rewrite-race tail: that is damage and must raise.
        path = tmp_path / "dayledger.jsonl"
        path.write_text('{"day":0}\nnot json\n{"day":2}\n')
        with pytest.raises(ValueError, match=":2:"):
            load_rows(path)
        path.write_text('[1,2]\n{"day":1}\n')
        with pytest.raises(ValueError, match="not a ledger row"):
            load_rows(path)

    def test_load_rows_skips_truncated_tail(
        self, tmp_path, caplog, propagate_repro_logs
    ):
        # A live reader racing the atomic whole-file rewrite can see a
        # torn final line; the healthy prefix loads with one notice.
        path = tmp_path / "dayledger.jsonl"
        path.write_text('{"day":0}\n{"day":1}\n{"day":2,"cli')
        with caplog.at_level("WARNING", logger="repro.obs.timeseries"):
            rows = load_rows(path)
        assert [row["day"] for row in rows] == [0, 1]
        notices = [r for r in caplog.records if "trailing" in r.getMessage()]
        assert len(notices) == 1
        assert "skipped 1 trailing line(s)" in notices[0].getMessage()

    def test_load_rows_skips_garbage_tail_lines(
        self, tmp_path, caplog, propagate_repro_logs
    ):
        # Several trailing bad lines (torn rewrite plus a partial row)
        # still yield the healthy prefix and exactly one notice.
        path = tmp_path / "dayledger.jsonl"
        path.write_text('{"day":0}\n[1,2]\nnot json\n')
        with caplog.at_level("WARNING", logger="repro.obs.timeseries"):
            rows = load_rows(path)
        assert [row["day"] for row in rows] == [0]
        notices = [r for r in caplog.records if "trailing" in r.getMessage()]
        assert len(notices) == 1
        assert "skipped 2 trailing line(s)" in notices[0].getMessage()

    def test_load_rows_all_garbage_returns_empty(
        self, tmp_path, caplog, propagate_repro_logs
    ):
        path = tmp_path / "dayledger.jsonl"
        path.write_text("not json\n")
        with caplog.at_level("WARNING", logger="repro.obs.timeseries"):
            assert load_rows(path) == []
        assert any("trailing" in r.getMessage() for r in caplog.records)

    def test_rows_to_series_flattens_shutdown_stages(self):
        rows = self._populated().rows()
        series = rows_to_series(rows)
        assert series["shutdowns.registration_screen"] == [1.0, 0.0, 0.0]
        assert series["clicks"] == [10.5, 10.5, 10.5]
        assert series["registrations_legit"][0] == 7.0


class TestEngineIntegration:
    """The hard invariant: a ledgered run is bit-identical to a bare one."""

    CONFIG = small_config(seed=7, days=30)

    def _run(self, with_ledger: bool):
        engine = SimulationEngine(self.CONFIG)
        ledger = DayLedger(days=self.CONFIG.days) if with_ledger else None
        prior = obs.set_dayledger(ledger)
        try:
            result = engine.run()
        finally:
            obs.set_dayledger(prior)
        return result, engine.rng_state(), ledger

    def test_ledgered_run_bit_identical_to_unledgered(self):
        bare, rng_bare, _ = self._run(with_ledger=False)
        ledgered, rng_led, ledger = self._run(with_ledger=True)

        for name in bare.impressions.field_names():
            assert np.array_equal(
                getattr(bare.impressions, name),
                getattr(ledgered.impressions, name),
            ), f"column {name} differs"
        assert bare.detections == ledgered.detections
        # Serialized RNG states: the ledger never draws randomness.
        assert rng_bare == rng_led

        # And the ledger's totals agree with the impression table.
        rows = ledger.rows()
        assert len(rows) == self.CONFIG.days
        total_clicks = sum(row.get("clicks", 0.0) for row in rows)
        assert total_clicks == pytest.approx(
            float(bare.impressions.clicks.sum())
        )
        total_spend = sum(row.get("spend", 0.0) for row in rows)
        assert total_spend == pytest.approx(
            float(bare.impressions.spend.sum())
        )
        total_rows = sum(row.get("rows", 0) for row in rows)
        assert total_rows == len(bare.impressions)

    def test_ledger_sees_registrations_and_shutdowns(self):
        _, _, ledger = self._run(with_ledger=True)
        rows = ledger.rows()
        registrations = sum(
            row["registrations_legit"] + row["registrations_fraud"]
            for row in rows
        )
        assert registrations > 0
        assert any(row["shutdowns"] for row in rows)
        # Kernel feed flows through the batched auction path.
        assert sum(row.get("kernel_shown", 0) for row in rows) > 0

    def test_engine_phase3_only_feeds_open_days(self):
        """Running auctions standalone (no phase 1) still ledgers."""
        engine = SimulationEngine(self.CONFIG)
        accounts, _ = engine.generate_population()
        market = MarketIndex(accounts)
        ledger = DayLedger(days=self.CONFIG.days)
        prior = obs.set_dayledger(ledger)
        try:
            engine.run_auctions(market, ImpressionBuilder())
        finally:
            obs.set_dayledger(prior)
        rows = ledger.rows()
        assert all("impressions" in row for row in rows)
