"""Unit tests for the span tracer."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.sink import MemorySink
from repro.obs.trace import Tracer


class TestTracer:
    def test_span_records_timing_and_attrs(self):
        tracer = Tracer()
        sink = MemorySink()
        tracer.add_sink(sink)
        with tracer.span("work", size=3) as span:
            assert span.name == "work"
            assert span.end is None
        [event] = sink.events
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["attrs"] == {"size": 3}
        assert event["dur"] >= 0.0
        assert event["parent"] is None

    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        sink = MemorySink()
        tracer.add_sink(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                assert tracer.current_span().name == "inner"
            assert tracer.current_span() is outer
        inner_event, outer_event = sink.events
        assert inner_event["parent"] == outer_event["id"]
        assert outer_event["parent"] is None

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer()
        sink = MemorySink()
        tracer.add_sink(sink)
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [e["id"] for e in sink.events]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_no_sinks_means_no_event_payloads(self):
        tracer = Tracer()
        with tracer.span("quiet") as span:
            pass
        # The span still timed itself; nothing was built for sinks.
        assert span.duration is not None
        assert tracer.sinks == ()

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        sink = MemorySink()
        tracer.add_sink(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        [event] = sink.events
        assert event["name"] == "doomed"
        assert tracer.current_span() is None

    def test_trace_decorator_uses_qualname_by_default(self):
        tracer = Tracer()
        sink = MemorySink()
        tracer.add_sink(sink)

        @tracer.trace()
        def helper():
            return 42

        assert helper() == 42
        [event] = sink.events
        assert "helper" in event["name"]

    def test_event_emits_point_payload(self):
        tracer = Tracer()
        sink = MemorySink()
        tracer.add_sink(sink)
        tracer.event("checkpoint", day=3)
        [event] = sink.events
        assert event["kind"] == "event"
        assert event["attrs"] == {"day": 3}

    def test_now_is_monotonic(self):
        tracer = Tracer()
        a = tracer.now()
        b = tracer.now()
        assert b >= a >= 0.0


class TestGlobalHelpers:
    def test_capture_collects_and_detaches(self):
        with obs.capture() as sink:
            with obs.span("global-span"):
                obs.event("global-event")
        names = [e["name"] for e in sink.events]
        assert names == ["global-event", "global-span"]
        assert sink not in obs.tracer().sinks

    def test_publish_metrics_snapshot_event(self):
        obs.counter("test.publish.count").inc(7)
        with obs.capture() as sink:
            obs.publish_metrics()
        [event] = sink.events
        assert event["kind"] == "metrics"
        assert event["data"]["counters"]["test.publish.count"] >= 7

    def test_heartbeat_every_env_override(self, monkeypatch):
        monkeypatch.delenv(obs.HEARTBEAT_ENV, raising=False)
        assert obs.heartbeat_every() == obs.DEFAULT_HEARTBEAT_EVERY
        monkeypatch.setenv(obs.HEARTBEAT_ENV, "5")
        assert obs.heartbeat_every() == 5
        monkeypatch.setenv(obs.HEARTBEAT_ENV, "0")
        assert obs.heartbeat_every() == 0
        monkeypatch.setenv(obs.HEARTBEAT_ENV, "nonsense")
        assert obs.heartbeat_every() == obs.DEFAULT_HEARTBEAT_EVERY
