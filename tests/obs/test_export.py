"""Tests for the Chrome trace_event exporter and its CLI."""

from __future__ import annotations

import json

from repro.obs.__main__ import main as obs_main
from repro.obs.export import (
    TRACE_NAME,
    events_to_chrome_trace,
    export_chrome_trace,
    worker_sort_key,
)


def _span(span_id, name, start=0.5, dur=0.25, worker=None, attrs=None):
    event = {
        "t": start + dur,
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": None,
        "start": start,
        "dur": dur,
        "attrs": attrs or {},
    }
    if worker is not None:
        event["w"] = worker
    return event


class TestWorkerSortKey:
    def test_natural_numeric_order(self):
        workers = ["w10", "w2", "w1"]
        assert sorted(workers, key=worker_sort_key) == ["w1", "w2", "w10"]

    def test_non_numeric_ids_still_sort(self):
        assert worker_sort_key("main") == ("main", -1)


class TestChromeTraceConversion:
    def test_span_becomes_complete_event_in_microseconds(self):
        trace = events_to_chrome_trace([_span(1, "phase3.auctions")])
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "phase3.auctions"
        assert slices[0]["ts"] == 500000.0
        assert slices[0]["dur"] == 250000.0
        assert slices[0]["pid"] == 1

    def test_point_event_becomes_instant(self):
        events = [
            {"t": 1.5, "kind": "event", "name": "runner.checkpoint",
             "attrs": {"day_end": 7}}
        ]
        trace = events_to_chrome_trace(events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["ts"] == 1500000.0
        assert instants[0]["args"] == {"day_end": 7}

    def test_metrics_become_counter_tracks_sorted(self):
        events = [
            {"t": 2.0, "kind": "metrics",
             "data": {"counters": {"b": 2, "a": 1}, "gauges": {},
                      "histograms": {}}}
        ]
        trace = events_to_chrome_trace(events)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert [c["name"] for c in counters] == ["a", "b"]
        assert counters[0]["args"] == {"value": 1}

    def test_workers_map_to_distinct_pids_with_metadata(self):
        events = [
            _span(1, "run"),                     # implicit w0
            _span(2, "run", worker="w1"),
            _span(3, "run", worker="w10"),
        ]
        trace = events_to_chrome_trace(events)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == [
            "repro worker w0", "repro worker w1", "repro worker w10",
        ]
        assert [m["pid"] for m in meta] == [1, 2, 3]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [s["pid"] for s in slices] == [1, 2, 3]

    def test_resources_and_unknown_kinds_are_skipped(self):
        events = [
            {"t": 1.0, "kind": "resources", "data": {"overall": {}}},
            {"t": 1.0, "kind": "someday", "data": {}},
        ]
        trace = events_to_chrome_trace(events)
        assert [e["ph"] for e in trace["traceEvents"]] == ["M"]

    def test_conversion_is_deterministic(self):
        events = [
            _span(1, "run", worker="w1"),
            {"t": 2.0, "kind": "metrics",
             "data": {"counters": {"x": 1}, "gauges": {}, "histograms": {}}},
        ]
        first = json.dumps(events_to_chrome_trace(events), sort_keys=True)
        second = json.dumps(events_to_chrome_trace(events), sort_keys=True)
        assert first == second


class TestExportCli:
    def _write_run(self, run_dir):
        run_dir.mkdir(exist_ok=True)
        events = [
            _span(1, "runner.run", dur=2.0),
            {"t": 2.0, "kind": "event", "name": "heartbeat",
             "attrs": {"phase": "phase3", "day": 10}},
        ]
        (run_dir / "telemetry.jsonl").write_text(
            "\n".join(json.dumps(e, separators=(",", ":")) for e in events)
            + "\n"
        )

    def test_export_writes_trace_json_into_run_dir(self, tmp_path, capsys):
        self._write_run(tmp_path)
        assert obs_main(["export", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert TRACE_NAME in out
        payload = json.loads((tmp_path / TRACE_NAME).read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_export_honors_explicit_out_and_format(self, tmp_path):
        self._write_run(tmp_path)
        out = tmp_path / "custom.json"
        assert obs_main(
            ["export", str(tmp_path), "--format", "chrome-trace",
             "--out", str(out)]
        ) == 0
        assert out.exists()

    def test_export_missing_telemetry_exits_2(self, tmp_path):
        assert obs_main(["export", str(tmp_path)]) == 2

    def test_export_malformed_telemetry_exits_2(self, tmp_path):
        (tmp_path / "telemetry.jsonl").write_text("garbage\n")
        assert obs_main(["export", str(tmp_path)]) == 2

    def test_export_function_round_trips(self, tmp_path):
        out = export_chrome_trace([_span(1, "run")], tmp_path / "t.json")
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
