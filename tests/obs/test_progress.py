"""Tests for the progress sidecar, the watch CLI, and heartbeat env."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import (
    PROGRESS_NAME,
    PROGRESS_SCHEMA,
    ProgressSink,
    load_progress,
    render_progress,
)


def _event(name, t=1.0, **attrs):
    return {"t": t, "kind": "event", "name": name, "attrs": attrs}


def _sink(tmp_path, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("wall_clock", lambda: 1000.0)
    return ProgressSink(tmp_path, **kwargs)


@pytest.fixture
def propagate_repro_logs(monkeypatch):
    # The ``repro`` logger tree runs with propagate=False once its
    # handler is attached; let records reach caplog's root handler.
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)


class TestProgressSink:
    def test_start_event_writes_initial_sidecar(self, tmp_path):
        sink = _sink(tmp_path)
        sink.emit(_event("runner.start", days=120, seed=7))
        payload = load_progress(tmp_path)
        assert payload["schema"] == PROGRESS_SCHEMA
        assert payload["status"] == "running"
        assert payload["days"] == 120
        assert payload["worker"] == "w0"
        assert payload["updated_unix"] == 1000.0

    def test_heartbeat_updates_phase_day_throughput(self, tmp_path):
        sink = _sink(tmp_path, days=100)
        sink.emit(
            _event(
                "heartbeat",
                t=2.5,
                phase="phase3",
                day=49,
                days_per_sec=20.0,
                eta_s=2.5,
            )
        )
        payload = load_progress(tmp_path)
        assert payload["phase"] == "phase3"
        assert payload["day"] == 49
        assert payload["days_per_sec"] == 20.0
        assert payload["eta_s"] == 2.5
        assert payload["heartbeats"] == 1
        assert payload["elapsed_s"] == 2.5

    def test_checkpoint_records_last_checkpoint(self, tmp_path):
        sink = _sink(tmp_path)
        attrs = {"day_start": 0, "day_end": 7, "rows": 42, "file": "c.npc"}
        sink.emit(_event("runner.checkpoint", **attrs))
        payload = load_progress(tmp_path)
        assert payload["last_checkpoint"] == attrs
        assert payload["day"] == 6

    def test_degraded_artifacts_accumulate_without_duplicates(self, tmp_path):
        sink = _sink(tmp_path)
        sink.emit(_event("io.degraded", artifact="telemetry.jsonl", error="x"))
        sink.emit(_event("io.degraded", artifact="telemetry.jsonl", error="x"))
        sink.emit(_event("io.degraded", artifact="dayledger.jsonl", error="y"))
        payload = load_progress(tmp_path)
        assert payload["degraded"] == ["telemetry.jsonl", "dayledger.jsonl"]

    def test_complete_event_is_terminal(self, tmp_path):
        sink = _sink(tmp_path, days=60)
        sink.emit(_event("runner.complete", days=60, rows=10))
        payload = load_progress(tmp_path)
        assert payload["status"] == "complete"
        assert payload["day"] == 59
        assert payload["eta_s"] == 0.0

    def test_mark_forces_terminal_status(self, tmp_path):
        sink = _sink(tmp_path)
        sink.emit(_event("runner.start", days=10))
        sink.mark("interrupted")
        assert load_progress(tmp_path)["status"] == "interrupted"

    def test_counters_snapshot_comes_from_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("auction.rows_emitted").inc(77)
        registry.counter("auction.candidates_gathered").inc(5)  # not listed
        sink = _sink(tmp_path, registry=registry)
        sink.emit(_event("runner.start", days=10))
        counters = load_progress(tmp_path)["counters"]
        assert counters == {"auction.rows_emitted": 77}

    def test_non_runner_events_do_not_write(self, tmp_path):
        sink = _sink(tmp_path)
        sink.emit({"t": 1.0, "kind": "span", "name": "x", "id": 1,
                   "parent": None, "start": 0.0, "dur": 1.0, "attrs": {}})
        sink.emit(_event("runner.stray_removed", file="x"))
        assert not (tmp_path / PROGRESS_NAME).exists()

    def test_write_failure_degrades_with_one_warning(
        self, tmp_path, monkeypatch, caplog, propagate_repro_logs
    ):
        def boom(path, text):
            raise OSError("disk on fire")

        monkeypatch.setattr("repro.records.atomic.atomic_write_text", boom)
        sink = _sink(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.obs.progress"):
            sink.emit(_event("runner.start", days=10))
            sink.emit(_event("heartbeat", phase="phase1", day=5))
        warnings = [r for r in caplog.records if "sidecar" in r.getMessage()]
        assert len(warnings) == 1


class TestLoadAndRender:
    def test_load_progress_absent_returns_none(self, tmp_path):
        assert load_progress(tmp_path) is None

    def test_load_progress_garbage_returns_none(self, tmp_path):
        (tmp_path / PROGRESS_NAME).write_text("not json")
        assert load_progress(tmp_path) is None
        (tmp_path / PROGRESS_NAME).write_text("[1,2]")
        assert load_progress(tmp_path) is None

    def test_render_running_line(self):
        line = render_progress(
            {
                "status": "running",
                "phase": "phase3",
                "day": 49,
                "days": 100,
                "days_per_sec": 20.0,
                "eta_s": 3.0,
            }
        )
        assert "running" in line
        assert "phase3" in line
        assert "day 50/100 (50%)" in line
        assert "20.0 days/s" in line
        assert "eta 3s" in line

    def test_render_complete_line_omits_eta(self):
        line = render_progress({"status": "complete", "day": 99, "days": 100})
        assert line.startswith("complete")
        assert "eta" not in line

    def test_render_flags_staleness_and_degradation(self):
        line = render_progress(
            {"status": "running", "degraded": ["telemetry.jsonl"]},
            stale_s=120.0,
        )
        assert "degraded:telemetry.jsonl" in line
        assert "stale 120s" in line


class TestWatchCli:
    def test_watch_once_prints_status_line(self, tmp_path, capsys):
        sink = _sink(tmp_path, days=60)
        sink.emit(_event("runner.complete", days=60))
        assert obs_main(["watch", str(tmp_path), "--once"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_watch_once_without_sidecar_notices_and_exits_0(
        self, tmp_path, capsys
    ):
        assert obs_main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert PROGRESS_NAME in out
        assert "pre-sidecar" in out

    def test_watch_loop_exits_when_run_completes(self, tmp_path, capsys):
        sink = _sink(tmp_path)
        sink.emit(_event("runner.complete", days=10))
        assert obs_main(["watch", str(tmp_path), "--interval", "0.1"]) == 0
        assert "complete" in capsys.readouterr().out


class TestHeartbeatEnv:
    @pytest.fixture(autouse=True)
    def _fresh_warned(self, monkeypatch):
        monkeypatch.setattr(obs, "_HEARTBEAT_WARNED", set())

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(obs.HEARTBEAT_ENV, raising=False)
        assert obs.heartbeat_every() == obs.DEFAULT_HEARTBEAT_EVERY

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv(obs.HEARTBEAT_ENV, "7")
        assert obs.heartbeat_every() == 7

    def test_negative_clamps_to_disabled(self, monkeypatch):
        monkeypatch.setenv(obs.HEARTBEAT_ENV, "-3")
        assert obs.heartbeat_every() == 0

    def test_malformed_value_warns_once_and_uses_default(
        self, monkeypatch, caplog, propagate_repro_logs
    ):
        # Regression: a typo in the telemetry knob must degrade to the
        # clamped default with a warning, never abort the simulation.
        monkeypatch.setenv(obs.HEARTBEAT_ENV, "banana")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert obs.heartbeat_every() == obs.DEFAULT_HEARTBEAT_EVERY
            assert obs.heartbeat_every() == obs.DEFAULT_HEARTBEAT_EVERY
        warnings = [
            r for r in caplog.records if obs.HEARTBEAT_ENV in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_distinct_malformed_values_each_warn(
        self, monkeypatch, caplog, propagate_repro_logs
    ):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            monkeypatch.setenv(obs.HEARTBEAT_ENV, "banana")
            obs.heartbeat_every()
            monkeypatch.setenv(obs.HEARTBEAT_ENV, "kumquat")
            obs.heartbeat_every()
        warnings = [
            r for r in caplog.records if obs.HEARTBEAT_ENV in r.getMessage()
        ]
        assert len(warnings) == 2
