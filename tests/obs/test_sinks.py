"""Tests for the telemetry sinks, JSONL crash-safety in particular."""

from __future__ import annotations

import json
import logging

from repro.obs.sink import JsonlSink, LogSink, MemorySink, NullSink
from repro.obs.trace import Tracer


def _span_event(span_id, parent=None, name="s"):
    return {
        "t": 1.0,
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "start": 0.5,
        "dur": 0.5,
        "attrs": {},
    }


class TestBasicSinks:
    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit(_span_event(1))
        sink.flush()
        sink.close()

    def test_memory_sink_collects(self):
        sink = MemorySink()
        sink.emit(_span_event(1))
        sink.emit(_span_event(2))
        assert [e["id"] for e in sink.events] == [1, 2]

    def test_log_sink_routes_levels(self, caplog):
        logger = logging.getLogger("test.obs.logsink")
        sink = LogSink(logger=logger)
        with caplog.at_level(logging.DEBUG, logger="test.obs.logsink"):
            sink.emit(_span_event(1, name="phase"))
            sink.emit({"t": 1.0, "kind": "event", "name": "beat", "attrs": {}})
            sink.emit({"t": 1.0, "kind": "metrics", "data": {"counters": {"a": 1}}})
        levels = [record.levelno for record in caplog.records]
        assert levels == [logging.DEBUG, logging.INFO, logging.INFO]
        assert "phase" in caplog.records[0].message
        assert "metrics snapshot" in caplog.records[2].message


class TestJsonlSink:
    def test_flush_writes_parseable_jsonl(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(path)
        sink.emit(_span_event(1))
        sink.emit({"t": 2.0, "kind": "event", "name": "e", "attrs": {"k": 1}})
        sink.flush()
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["id"] == 1
        assert lines[1]["attrs"] == {"k": 1}

    def test_unflushed_events_never_reach_disk(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(path)
        sink.emit(_span_event(1))
        sink.flush()
        sink.emit(_span_event(2))
        # No flush: disk still holds exactly the last durable state.
        assert len(path.read_text().splitlines()) == 1
        sink.flush()
        assert len(path.read_text().splitlines()) == 2

    def test_flush_is_idempotent_and_atomic(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(path)
        sink.emit(_span_event(1))
        sink.flush()
        before = path.read_text()
        sink.flush()  # clean: no rewrite needed, content unchanged
        assert path.read_text() == before
        # The atomic-write protocol leaves no tmp litter behind.
        assert [p.name for p in tmp_path.iterdir()] == ["telemetry.jsonl"]

    def test_preload_offsets_new_span_ids(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        first = JsonlSink(path)
        first.emit(_span_event(1))
        first.emit(_span_event(2, parent=1))
        first.flush()

        resumed = JsonlSink(path)
        resumed.emit(_span_event(1))            # new process restarts ids at 1
        resumed.emit(_span_event(2, parent=1))
        resumed.flush()

        ids = [
            e["id"]
            for e in map(json.loads, path.read_text().splitlines())
            if e["kind"] == "span"
        ]
        assert ids == [1, 2, 3, 4]
        parents = [
            e["parent"]
            for e in map(json.loads, path.read_text().splitlines())
            if e["kind"] == "span"
        ]
        # Remapped parent pointers stay internally consistent.
        assert parents == [None, 1, None, 3]

    def test_preload_tolerates_blank_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(_span_event(5)) + "\n\n")
        sink = JsonlSink(path)
        assert len(sink) == 1
        sink.emit(_span_event(1))
        sink.flush()
        events = [json.loads(x) for x in path.read_text().splitlines()]
        assert [e["id"] for e in events] == [5, 6]

    def test_load_existing_false_starts_fresh(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(_span_event(9)) + "\n")
        sink = JsonlSink(path, load_existing=False)
        sink.emit(_span_event(1))
        sink.flush()
        events = [json.loads(x) for x in path.read_text().splitlines()]
        assert [e["id"] for e in events] == [1]

    def test_tracer_flush_reaches_sink(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        tracer = Tracer()
        sink = JsonlSink(path)
        tracer.add_sink(sink)
        with tracer.span("s"):
            pass
        tracer.flush()
        assert path.exists()
        [event] = [json.loads(x) for x in path.read_text().splitlines()]
        assert event["name"] == "s"
