"""Per-day span parity in Phase 3.

Regression for an off-by-one in the span tree: days whose auction body
early-outed before the bucket gather (day 0 has no live offers at
t=0.5, so every run hit this) emitted a ``phase3.day`` span but no
``auction.gather``/``auction.kernel`` spans -- 727 kernel spans against
728 day spans at full scale.  Every day must now emit all three, and
the fix must not move any RNG stream (dead-market days still skip
query sampling, like the scalar oracle).
"""

from collections import Counter

from repro import obs
from repro.config import small_config
from repro.records.impressions import ImpressionBuilder
from repro.simulator.engine import SimulationEngine
from repro.simulator.market import MarketIndex


def _span_counts(days: int) -> Counter:
    engine = SimulationEngine(small_config(seed=5, days=days))
    accounts, _ = engine.generate_population()
    market = MarketIndex(accounts)
    builder = ImpressionBuilder()
    with obs.capture() as sink:
        engine.run_auctions(market, builder)
    return Counter(
        e["name"] for e in sink.events if e["kind"] == "span"
    )


def test_every_day_emits_gather_and_kernel_spans():
    days = 12
    counts = _span_counts(days)
    assert counts["phase3.day"] == days
    assert counts["auction.gather"] == days
    assert counts["auction.kernel"] == days


def test_span_parity_does_not_perturb_rng_streams():
    # The scalar auction loop is the draw-order oracle; emitting spans
    # on early-out days must leave every stream state bit-identical.
    def _final_state(scalar: bool):
        engine = SimulationEngine(small_config(seed=5, days=12))
        accounts, _ = engine.generate_population()
        market = MarketIndex(accounts)
        builder = ImpressionBuilder()
        if scalar:
            engine.run_auctions_scalar(market, builder)
        else:
            engine.run_auctions(market, builder)
        return engine.rng_state()

    assert _final_state(scalar=False) == _final_state(scalar=True)
