"""Tests for the validation and dataset-export CLIs."""

import pytest

from repro.records.__main__ import main as export_main
from repro.validation.__main__ import main as validate_main


class TestValidationCli:
    def test_report_prints(self, capsys):
        assert validate_main(["--small"]) == 0
        captured = capsys.readouterr()
        assert "targets in band" in captured.out
        assert "Fig 10" in captured.out

    def test_strict_mode_returns_status(self, capsys):
        # Small runs may miss full-scale bands; strict mode must return
        # 0 or 1 (not raise) either way.
        code = validate_main(["--small", "--strict"])
        assert code in (0, 1)


class TestExportCli:
    def test_exports_three_datasets(self, tmp_path, capsys):
        assert export_main([str(tmp_path), "--small"]) == 0
        assert (tmp_path / "customers.jsonl").exists()
        assert (tmp_path / "detections.jsonl").exists()
        assert (tmp_path / "impressions.csv").exists()
        captured = capsys.readouterr()
        assert "impression rows" in captured.out

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        assert export_main([str(target), "--small"]) == 0
        assert target.exists()
