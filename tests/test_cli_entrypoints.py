"""Tests for the validation, dataset-export, and runner CLIs."""

import pytest

from repro.records.__main__ import main as export_main
from repro.runner.__main__ import main as runner_main
from repro.validation.__main__ import main as validate_main


class TestValidationCli:
    def test_report_prints(self, capsys):
        assert validate_main(["--small"]) == 0
        captured = capsys.readouterr()
        assert "targets in band" in captured.out
        assert "Fig 10" in captured.out

    def test_strict_mode_returns_status(self, capsys):
        # Small runs may miss full-scale bands; strict mode must return
        # 0 or 1 (not raise) either way.
        code = validate_main(["--small", "--strict"])
        assert code in (0, 1)


class TestExportCli:
    def test_exports_three_datasets(self, tmp_path, capsys):
        assert export_main([str(tmp_path), "--small"]) == 0
        assert (tmp_path / "customers.jsonl").exists()
        assert (tmp_path / "detections.jsonl").exists()
        assert (tmp_path / "impressions.csv").exists()
        captured = capsys.readouterr()
        assert "impression rows" in captured.out

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        assert export_main([str(target), "--small"]) == 0
        assert target.exists()


class TestRunnerCli:
    ARGS = ["--small", "--seed", "5", "--days", "25", "--checkpoint-every", "10"]

    def test_fresh_run_then_resume(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert runner_main(["--checkpoint-dir", str(run_dir), *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "impression rows" in out
        assert (run_dir / "MANIFEST.json").exists()
        assert any((run_dir / "chunks").iterdir())
        # A completed run resumes as a pure reload.
        assert (
            runner_main(
                ["--checkpoint-dir", str(run_dir), "--resume", *self.ARGS]
            )
            == 0
        )

    def test_refuses_clobbering_existing_run(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert runner_main(["--checkpoint-dir", str(run_dir), *self.ARGS]) == 0
        assert runner_main(["--checkpoint-dir", str(run_dir), *self.ARGS]) == 2
        assert "already contains a run" in capsys.readouterr().err

    def test_resume_without_run_fails_cleanly(self, tmp_path, capsys):
        code = runner_main(
            ["--checkpoint-dir", str(tmp_path / "void"), "--resume", *self.ARGS]
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_invalid_checkpoint_every_fails_cleanly(self, tmp_path, capsys):
        # Constructor-time ConfigError (checkpoint_every < 1) must exit
        # like every other ReproError -- code 2 and a one-line message,
        # not a traceback.
        code = runner_main(
            [
                "--checkpoint-dir",
                str(tmp_path / "run"),
                "--small",
                "--checkpoint-every",
                "0",
            ]
        )
        assert code == 2
        assert "checkpoint_every must be >= 1" in capsys.readouterr().err
