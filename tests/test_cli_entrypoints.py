"""Tests for the validation, dataset-export, and runner CLIs."""

import pytest

from repro.records.__main__ import main as export_main
from repro.runner.__main__ import main as runner_main
from repro.validation.__main__ import main as validate_main


class TestValidationCli:
    def test_report_prints(self, capsys):
        assert validate_main(["--small"]) == 0
        captured = capsys.readouterr()
        assert "targets in band" in captured.out
        assert "Fig 10" in captured.out

    def test_strict_mode_returns_status(self, capsys):
        # Small runs may miss full-scale bands; strict mode must return
        # 0 or 1 (not raise) either way.
        code = validate_main(["--small", "--strict"])
        assert code in (0, 1)


class TestExportCli:
    def test_exports_three_datasets(self, tmp_path, capsys):
        assert export_main([str(tmp_path), "--small"]) == 0
        assert (tmp_path / "customers.jsonl").exists()
        assert (tmp_path / "detections.jsonl").exists()
        assert (tmp_path / "impressions.csv").exists()
        captured = capsys.readouterr()
        assert "impression rows" in captured.out

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        assert export_main([str(target), "--small"]) == 0
        assert target.exists()


class TestRunnerCli:
    ARGS = ["--small", "--seed", "5", "--days", "25", "--checkpoint-every", "10"]

    def test_fresh_run_then_resume(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert runner_main(["--checkpoint-dir", str(run_dir), *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "impression rows" in out
        assert (run_dir / "MANIFEST.json").exists()
        assert any((run_dir / "chunks").iterdir())
        # A completed run resumes as a pure reload.
        assert (
            runner_main(
                ["--checkpoint-dir", str(run_dir), "--resume", *self.ARGS]
            )
            == 0
        )

    def test_refuses_clobbering_existing_run(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert runner_main(["--checkpoint-dir", str(run_dir), *self.ARGS]) == 0
        assert runner_main(["--checkpoint-dir", str(run_dir), *self.ARGS]) == 2
        assert "already contains a run" in capsys.readouterr().err

    def test_resume_without_run_fails_cleanly(self, tmp_path, capsys):
        code = runner_main(
            ["--checkpoint-dir", str(tmp_path / "void"), "--resume", *self.ARGS]
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_invalid_checkpoint_every_fails_cleanly(self, tmp_path, capsys):
        # Constructor-time ConfigError (checkpoint_every < 1) must exit
        # like every other ReproError -- code 2 and a one-line message,
        # not a traceback.
        code = runner_main(
            [
                "--checkpoint-dir",
                str(tmp_path / "run"),
                "--small",
                "--checkpoint-every",
                "0",
            ]
        )
        assert code == 2
        assert "checkpoint_every must be >= 1" in capsys.readouterr().err


class TestVerifyDoctorCli:
    """`python -m repro.runner verify|doctor` and `--run-dir` validation."""

    ARGS = ["--small", "--seed", "5", "--days", "12", "--checkpoint-every", "5"]

    @pytest.fixture()
    def run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        # The explicit `run` subcommand is equivalent to the bare form.
        assert runner_main(["run", "--checkpoint-dir", str(run_dir), *self.ARGS]) == 0
        capsys.readouterr()
        return run_dir

    def _bitrot(self, run_dir):
        victim = sorted((run_dir / "chunks").iterdir())[0]
        data = bytearray(victim.read_bytes())
        data[100] ^= 0xFF
        victim.write_bytes(bytes(data))
        return victim

    def test_verify_healthy_exits_zero(self, run_dir, capsys):
        assert runner_main(["verify", str(run_dir)]) == 0
        assert "HEALTHY" in capsys.readouterr().out

    def test_verify_damage_exits_one(self, run_dir, capsys):
        self._bitrot(run_dir)
        assert runner_main(["verify", str(run_dir)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out and "checksum" in out

    def test_verify_unreadable_manifest_exits_two(self, run_dir, capsys):
        (run_dir / "MANIFEST.json").write_text("{broken")
        assert runner_main(["verify", str(run_dir)]) == 2

    def test_doctor_dry_run_reports_without_touching(self, run_dir, capsys):
        victim = self._bitrot(run_dir)
        damaged = victim.read_bytes()
        assert runner_main(["doctor", str(run_dir)]) == 1
        assert "--repair" in capsys.readouterr().out
        assert victim.read_bytes() == damaged  # diagnosis only

    def test_doctor_repair_restores_health(self, run_dir, capsys):
        self._bitrot(run_dir)
        assert runner_main(["doctor", str(run_dir), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "chunk-replay" in out and "HEALTHY" in out
        assert runner_main(["verify", str(run_dir)]) == 0

    def test_validation_from_run_dir(self, tmp_path, capsys):
        # Full small-scale horizon: the validation suite needs enough
        # days for its policy-window subsets to be non-empty.
        run_dir = tmp_path / "run"
        assert (
            runner_main(
                [
                    "run",
                    "--checkpoint-dir",
                    str(run_dir),
                    "--small",
                    "--checkpoint-every",
                    "60",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = validate_main(["--run-dir", str(run_dir)])
        assert code == 0
        assert "targets in band" in capsys.readouterr().out

    def test_validation_run_dir_rejects_config_flags(self, run_dir, capsys):
        with pytest.raises(SystemExit):
            validate_main(["--run-dir", str(run_dir), "--small"])

    def test_validation_run_dir_missing_exits_two(self, tmp_path, capsys):
        assert validate_main(["--run-dir", str(tmp_path / "void")]) == 2
