"""Tests for the position-bias click model."""

import numpy as np
import pytest

from repro.auction.gsp import Candidate, ShownAd
from repro.auction.slots import SlotPlacement
from repro.clickmodel import (
    click_probability,
    examination_probability,
    sample_clicks,
)
from repro.config import ClickConfig
from repro.entities.enums import MatchType

CONFIG = ClickConfig()


def shown_at(position, mainline, quality=0.1):
    candidate = Candidate(1, 1, MatchType.EXACT, 1.0, quality)
    return ShownAd(candidate, SlotPlacement(position, mainline), 0.5)


class TestExamination:
    def test_top_slot_highest(self):
        top = examination_probability(SlotPlacement(1, True), CONFIG)
        second = examination_probability(SlotPlacement(2, True), CONFIG)
        assert top == pytest.approx(CONFIG.top_examination)
        assert second < top

    def test_mainline_decays_geometrically(self):
        p1 = examination_probability(SlotPlacement(1, True), CONFIG)
        p2 = examination_probability(SlotPlacement(2, True), CONFIG)
        p3 = examination_probability(SlotPlacement(3, True), CONFIG)
        assert p2 / p1 == pytest.approx(CONFIG.mainline_decay)
        assert p3 / p2 == pytest.approx(CONFIG.mainline_decay)

    def test_sidebar_much_weaker_than_mainline(self):
        mainline_last = examination_probability(SlotPlacement(4, True), CONFIG)
        sidebar_first = examination_probability(SlotPlacement(5, False), CONFIG)
        assert sidebar_first < mainline_last

    def test_sidebar_decays(self):
        near = examination_probability(SlotPlacement(2, False), CONFIG)
        far = examination_probability(SlotPlacement(8, False), CONFIG)
        assert far < near


class TestClickProbability:
    def test_composes_examination_and_quality(self):
        shown = shown_at(1, True, quality=0.5)
        expected = CONFIG.top_examination * 0.5
        assert click_probability(shown, CONFIG) == pytest.approx(expected)

    def test_capped_at_one(self):
        shown = shown_at(1, True, quality=50.0)
        assert click_probability(shown, CONFIG) == 1.0

    def test_position_monotone(self):
        probs = [
            click_probability(shown_at(p, True), CONFIG) for p in range(1, 5)
        ]
        assert all(a > b for a, b in zip(probs, probs[1:]))


class TestSampleClicks:
    def test_zero_weight_rejected(self):
        rng = np.random.Generator(np.random.PCG64(0))
        with pytest.raises(ValueError):
            sample_clicks(shown_at(1, True), 0.0, CONFIG, rng)

    def test_mean_matches_probability(self):
        rng = np.random.Generator(np.random.PCG64(0))
        shown = shown_at(1, True, quality=0.2)
        weight = 1000.0
        samples = [sample_clicks(shown, weight, CONFIG, rng) for _ in range(300)]
        expected = weight * click_probability(shown, CONFIG)
        assert np.mean(samples) == pytest.approx(expected, rel=0.1)

    def test_nonnegative_integer(self):
        rng = np.random.Generator(np.random.PCG64(0))
        clicks = sample_clicks(shown_at(9, False), 10.0, CONFIG, rng)
        assert isinstance(clicks, int)
        assert clicks >= 0
