"""Shared fixtures: one small simulation reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import small_config, run_simulation
from repro.timeline import Window


@pytest.fixture(scope="session")
def sim_config():
    return small_config(seed=7, days=120)


@pytest.fixture(scope="session")
def sim_result(sim_config):
    """A 120-day small-scale simulation shared by the whole suite."""
    return run_simulation(sim_config)


@pytest.fixture(scope="session")
def sim_window():
    """A window covering the simulation's settled middle."""
    return Window(30.0, 120.0, "test window")


@pytest.fixture()
def rng():
    return np.random.Generator(np.random.PCG64(12345))
