"""Benchmark -- Figure 1: fraud share of registrations over time.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig01(benchmark, bench_context):
    output = benchmark(run_experiment, "fig1", bench_context)
    print()
    print(output.render())
    assert 0.2 < output.metrics['mean_share_first_half'] < 0.7
