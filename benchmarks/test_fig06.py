"""Benchmark -- Figure 6: impression rate vs clicks.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig06(benchmark, bench_context):
    output = benchmark(run_experiment, "fig6", bench_context)
    print()
    print(output.render())
    assert output.charts
