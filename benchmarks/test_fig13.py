"""Benchmark -- Figure 13: fraud ad position, organic vs influenced.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig13(benchmark, bench_context):
    output = benchmark(run_experiment, "fig13", bench_context)
    print()
    print(output.render())
    assert output.charts
