"""Ablation -- matched subset sampling (DESIGN.md section 4).

Section 3.3's matched subsets correct for demographic differences
before behavioural comparison.  Figure 7's caption makes the point that
the ads/keywords gap is *greatest* "when compared to advertisers
posting at similar rates to fraudulent advertisers": rate-matching
selects high-volume legitimate accounts, whose footprints dwarf
fraud's small, deliberately quiet inventories.  A uniform comparison
understates the effect.
"""

import numpy as np

from repro.analysis.subsets import SubsetBuilder
from repro.simulator.cache import cached_simulation
from repro.timeline import Window

from ablation_common import ablation_config


def _footprint_gaps():
    config = ablation_config()
    result = cached_simulation(config)
    window = Window(config.days * 0.25, config.days * 0.75, "ablation")
    builder = SubsetBuilder(result, window, target_size=2000)
    fraud = builder.build("F volume weight")
    uniform = builder.build("NF with clicks")
    matched = builder.build("NF rate match")

    def median_keywords(subset):
        return float(np.median([a.n_keywords for a in subset.accounts]))

    fraud_kws = max(1.0, median_keywords(fraud))
    return (
        median_keywords(uniform) / fraud_kws,
        median_keywords(matched) / fraud_kws,
    )


def test_ablation_subset_matching(benchmark):
    uniform_gap, matched_gap = benchmark.pedantic(
        _footprint_gaps, rounds=1, iterations=1
    )
    print(f"\nNF/F median keyword gap: uniform={uniform_gap:.1f}x "
          f"rate-matched={matched_gap:.1f}x")
    # The gap is an order of magnitude either way, and matching against
    # similar-rate legitimate advertisers makes it *larger* -- the
    # paper's Figure 7 observation.
    assert uniform_gap > 1.0
    assert matched_gap >= uniform_gap
