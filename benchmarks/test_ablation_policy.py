"""Ablation -- the tech-support policy ban (DESIGN.md section 4).

Figure 8's collapse must disappear when the ban is disabled: the
intervention, not background detection, kills the vertical.
"""

from repro.analysis.verticals import vertical_spend_by_month
from repro.simulator.cache import cached_simulation

from ablation_common import ablation_config


def _techsupport_tail_share(ban: bool) -> float:
    config = ablation_config()
    ban_day = config.days * 0.5 if ban else None
    config = config.with_detection(techsupport_ban_day=ban_day)
    result = cached_simulation(config)
    series = vertical_spend_by_month(result).series["techsupport"]
    half = len(series) // 2
    before = series[:half].sum()
    after = series[half + 1 :].sum()
    if before + after <= 0:
        return 0.0
    return after / (before + after)


def test_ablation_policy_ban(benchmark):
    banned_tail = benchmark.pedantic(
        _techsupport_tail_share, args=(True,), rounds=1, iterations=1
    )
    unbanned_tail = _techsupport_tail_share(False)
    print(f"\ntechsupport post-midpoint spend share: "
          f"ban={banned_tail:.3f} no-ban={unbanned_tail:.3f}")
    # The ban must collapse the vertical's later spend share.
    assert banned_tail < unbanned_tail
