"""Benchmark -- Figure 4: fraud spend/click concentration.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig04(benchmark, bench_context):
    output = benchmark(run_experiment, "fig4", bench_context)
    print()
    print(output.render())
    assert output.metrics.get('top10pct_click_share', 1.0) > 0.3
