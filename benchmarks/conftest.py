"""Shared benchmark fixtures.

One full-scale (two-year) simulation is run once per session and shared
by every figure/table benchmark; each benchmark then measures the cost
of regenerating its paper artifact from the logs.

Set ``REPRO_BENCH_FAST=1`` to use the small test-scale configuration
(useful while iterating; the shipped numbers use the full scale).
"""

from __future__ import annotations

import os

import pytest

from repro import default_config, small_config
from repro.experiments import ExperimentContext
from repro.simulator.cache import cached_simulation


def bench_config():
    if os.environ.get("REPRO_BENCH_FAST"):
        return small_config(seed=7, days=120)
    return default_config()


@pytest.fixture(scope="session")
def bench_context():
    config = bench_config()
    result = cached_simulation(config)
    return ExperimentContext(config, result=result)
