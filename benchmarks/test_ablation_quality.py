"""Ablation -- quality scores in ranking (DESIGN.md section 4).

Rank by bid x quality (the platform's design) versus bid alone
(``quality-blind``), approximated by flattening quality differences.
Without quality in the rank, low-quality broad-match ads buy their way
into the mainline and the marketplace's realized CTR drops.
"""

import numpy as np

from repro.auction import Candidate, run_auction
from repro.clickmodel import click_probability
from repro.config import AuctionConfig, ClickConfig
from repro.entities.enums import MatchType
from repro.rng import stream

AUCTION = AuctionConfig()
CLICK = ClickConfig()


def _candidates(rng, n=12):
    out = []
    for i in range(n):
        quality = float(rng.lognormal(-3.2, 0.6))
        out.append(
            Candidate(
                advertiser_id=i,
                ad_id=i,
                match_type=MatchType.PHRASE,
                max_bid=float(rng.lognormal(-0.5, 0.8)),
                quality=quality,
                click_quality=quality,
            )
        )
    return out


def _realized_ctr(candidates, flatten_quality):
    if flatten_quality:
        mean_quality = float(np.mean([c.quality for c in candidates]))
        ranked = [
            Candidate(
                c.advertiser_id, c.ad_id, c.match_type, c.max_bid,
                mean_quality, c.quality,
            )
            for c in candidates
        ]
    else:
        ranked = candidates
    outcome = run_auction(ranked, AUCTION)
    return sum(click_probability(s, CLICK) for s in outcome.shown)


def _sweep(flatten_quality: bool) -> float:
    rng = stream(7, "ablation-quality")
    total = 0.0
    for _ in range(400):
        total += _realized_ctr(_candidates(rng), flatten_quality)
    return total


def test_ablation_quality_score(benchmark):
    with_quality = benchmark(_sweep, False)
    without_quality = _sweep(True)
    print(f"\nexpected clicks/auction: quality-ranked={with_quality:.1f} "
          f"bid-ranked={without_quality:.1f}")
    # Quality-aware ranking must deliver more realized clicks.
    assert with_quality > without_quality
