"""Benchmark -- Figure 9: match-type mixes and bid levels.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig09(benchmark, bench_context):
    output = benchmark(run_experiment, "fig9", bench_context)
    print()
    print(output.render())
    assert 0 <= output.metrics['above_default_both_fraud'] <= 1
