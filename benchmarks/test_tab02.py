"""Benchmark -- Table 2: example ads per category.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_tab02(benchmark, bench_context):
    output = benchmark(run_experiment, "tab2", bench_context)
    print()
    print(output.render())
    assert output.metrics['n_categories'] == 5.0
