"""Shared configuration for ablation benchmarks.

Ablations need their own simulations (they change the config), so they
run at a medium scale: one simulated year, reduced arrival and query
rates.  ``REPRO_BENCH_FAST=1`` shrinks them further.
"""

from __future__ import annotations

import os

from repro.config import PopulationConfig, QueryConfig, SimulationConfig
from repro.simulator.cache import cached_simulation

__all__ = ["ablation_config", "ablation_sim"]


def ablation_config(seed: int = 20170202) -> SimulationConfig:
    if os.environ.get("REPRO_BENCH_FAST"):
        days, regs, auctions = 120, 12.0, 60
    else:
        days, regs, auctions = 240, 16.0, 120
    return SimulationConfig(
        seed=seed,
        days=days,
        population=PopulationConfig(registrations_per_day=regs),
        query=QueryConfig(auctions_per_day=auctions, volume_weight=1500.0),
    )


def ablation_sim(config: SimulationConfig):
    return cached_simulation(config)
