"""Benchmark -- Table 3: country distribution of fraud clicks.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_tab03(benchmark, bench_context):
    output = benchmark(run_experiment, "tab3", bench_context)
    print()
    print(output.render())
    assert output.metrics['top_country_share_of_fraud'] > 0.3
