"""Benchmark -- Figure 8: fraud spend per vertical over time.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig08(benchmark, bench_context):
    output = benchmark(run_experiment, "fig8", bench_context)
    print()
    print(output.render())
    assert output.charts
