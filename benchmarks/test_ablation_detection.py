"""Ablation -- detection pipeline aggressiveness (DESIGN.md section 4).

Weakening the whole pipeline (registration screen, content filter, and
the behavioural/rate hazards) must lengthen fraud lifetimes (Figure 2
shifts right) and raise fraud's share of marketplace impressions.
"""

from repro.analysis.lifetimes import fraud_lifetimes
from repro.simulator.cache import cached_simulation

from ablation_common import ablation_config


def _run(scale: float):
    """Simulate with every detection stage scaled by ``scale``."""
    config = ablation_config()
    detection = config.detection
    config = config.with_detection(
        registration_screen_prob=min(0.9, detection.registration_screen_prob * scale),
        content_filter_prob=min(0.95, detection.content_filter_prob * scale),
        behavior_hazard=detection.behavior_hazard * scale,
        prolific_behavior_hazard=detection.prolific_behavior_hazard * scale,
        rate_hazard_per_decade=detection.rate_hazard_per_decade * scale,
    )
    result = cached_simulation(config)
    curve = fraud_lifetimes(result)["Year 1 (account)"]
    table = result.impressions
    fraud_share = float(
        table.weight[table.fraud_labeled].sum() / max(1.0, table.weight.sum())
    )
    return curve.median, curve.quantile(0.75), fraud_share


def test_ablation_detection_strength(benchmark):
    base_median, base_p75, base_share = benchmark.pedantic(
        _run, args=(1.0,), rounds=1, iterations=1
    )
    weak_median, weak_p75, weak_share = _run(0.3)
    print(f"\nlifetime median/p75: baseline={base_median:.2f}/{base_p75:.2f}d "
          f"weak-detection={weak_median:.2f}/{weak_p75:.2f}d; "
          f"fraud impression share: {base_share:.4f} -> {weak_share:.4f}")
    assert weak_median > base_median
    assert weak_p75 > base_p75
    assert weak_share > base_share
