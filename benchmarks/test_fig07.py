"""Benchmark -- Figure 7: ads/keywords created and modified.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig07(benchmark, bench_context):
    output = benchmark(run_experiment, "fig7", bench_context)
    print()
    print(output.render())
    assert output.metrics['nf_over_f_median_keywords'] > 3
