"""Smoke test for the engine phase benchmark.

Runs ``scripts/bench_engine.py --quick`` and asserts it emits a
well-formed ``BENCH_engine.json`` record.  Deliberately asserts nothing
about wall-clock numbers — the point is that every future PR can run
the bench and extend the perf trajectory, not that CI machines are
fast — so this stays tier-1-safe (no flaky thresholds).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"


def test_bench_engine_quick_emits_well_formed_json(tmp_path):
    sys.path.insert(0, str(SCRIPTS_DIR))
    try:
        import bench_engine
    finally:
        sys.path.remove(str(SCRIPTS_DIR))

    out = tmp_path / "BENCH_engine.json"
    code = bench_engine.main(["--quick", "--out", str(out)])
    assert code == 0
    record = json.loads(out.read_text())

    assert record["schema"] == bench_engine.SCHEMA
    assert record["config"]["preset"] == "quick"
    assert record["config"]["days"] > 0
    phases = record["phases"]
    for key in ("population_s", "market_build_s", "auctions_s", "total_s"):
        assert phases[key] >= 0.0
    # Span-derived breakdown: each phase reports its hottest sub-spans.
    detail = record["phases_detail"]
    assert set(detail) == {
        "phase1.population",
        "phase2.market",
        "phase3.auctions",
    }
    assert "phase1.day" in detail["phase1.population"]
    assert "phase3.day" in detail["phase3.auctions"]
    for sub in detail["phase3.auctions"].values():
        assert sub["count"] > 0
        assert sub["total_s"] >= 0.0
    assert record["impressions"]["rows"] > 0
    assert record["impressions"]["rows_per_sec"] > 0
    # Not requested, so the oracle comparison must be absent.
    assert "scalar_oracle" not in record
