"""Smoke test for the engine phase benchmark.

Runs ``scripts/bench_engine.py --quick`` and asserts it emits a
well-formed ``BENCH_engine.json`` record.  Deliberately asserts almost
nothing about wall-clock numbers — the point is that every future PR
can run the bench and extend the perf trajectory, not that CI machines
are fast — so this stays tier-1-safe.  The one exception is a Phase-1
wall-clock *budget* set an order of magnitude above any observed
machine: it only fires on a catastrophic regression (an accidental
re-introduction of quadratic work), never on machine jitter.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"

#: Quick-config Phase 1 runs in well under a second everywhere we have
#: measured; 60s only trips on an algorithmic regression.
PHASE1_QUICK_BUDGET_S = 60.0


def test_bench_engine_quick_emits_well_formed_json(tmp_path):
    sys.path.insert(0, str(SCRIPTS_DIR))
    try:
        import bench_engine
    finally:
        sys.path.remove(str(SCRIPTS_DIR))

    out = tmp_path / "BENCH_engine.json"
    code = bench_engine.main(["--quick", "--out", str(out)])
    assert code == 0
    record = json.loads(out.read_text())

    assert record["schema"] == bench_engine.SCHEMA
    assert record["config"]["preset"] == "quick"
    assert record["config"]["days"] > 0
    phases = record["phases"]
    for key in ("population_s", "market_build_s", "auctions_s", "total_s"):
        assert phases[key] >= 0.0
    # Span-derived breakdown: each phase reports its hottest sub-spans.
    detail = record["phases_detail"]
    assert set(detail) == {
        "phase1.population",
        "phase2.market",
        "phase3.auctions",
    }
    # Whole-horizon Phase 1: a single draws sweep plus a build pass
    # replace the old per-day span tree.
    assert "phase1.draws" in detail["phase1.population"]
    assert "phase1.build" in detail["phase1.population"]
    assert "phase1.day" not in detail["phase1.population"]
    assert "phase3.day" in detail["phase3.auctions"]
    for sub in detail["phase3.auctions"].values():
        assert sub["count"] > 0
        assert sub["total_s"] >= 0.0
    assert record["impressions"]["rows"] > 0
    assert record["impressions"]["rows_per_sec"] > 0
    assert phases["population_s"] < PHASE1_QUICK_BUDGET_S
    # v3: columnar chunk-codec throughput rides along with every bench.
    columnar = record["columnar"]
    assert columnar["rows"] == record["impressions"]["rows"]
    assert columnar["bytes"] > 0
    assert columnar["write_rows_per_sec"] > 0
    assert columnar["read_rows_per_sec"] > 0
    # Not requested, so the oracle comparison must be absent.
    assert "scalar_oracle" not in record
