"""Benchmark -- Table 4: click share by match type.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_tab04(benchmark, bench_context):
    output = benchmark(run_experiment, "tab4", bench_context)
    print()
    print(output.render())
    assert 0 <= output.metrics['fraud_phrase_share'] <= 1
