"""Benchmark -- Figure 5: impression-rate CDFs.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig05(benchmark, bench_context):
    output = benchmark(run_experiment, "fig5", bench_context)
    print()
    print(output.render())
    assert output.metrics['median_ratio'] > 1.5
