"""Benchmark -- Figure 10: impressions affected by fraud competition.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig10(benchmark, bench_context):
    output = benchmark(run_experiment, "fig10", bench_context)
    print()
    print(output.render())
    assert output.metrics['f_median_affected'] >= output.metrics['nf_median_affected']
