"""Overhead smoke: the day ledger must stay within 3% of run time.

Acceptance bar from the cross-run observability PR: collecting the
marketplace-health timeseries (one :class:`DayLedger` fed from Phase 1,
the detection pipeline, and the auction kernel) costs < 3% over an
unledgered run.  Same noise-floor protocol as the telemetry overhead
bench: minimum of three runs per side plus a small absolute epsilon
for sub-second configs.
"""

from __future__ import annotations

import time

from repro import obs
from repro.config import small_config
from repro.obs.timeseries import DayLedger
from repro.simulator.engine import SimulationEngine

RUNS = 3
RELATIVE_BUDGET = 1.03
ABSOLUTE_EPSILON_S = 0.05


def _timed_run(config, ledgered: bool) -> float:
    engine = SimulationEngine(config)
    ledger = DayLedger(days=config.days) if ledgered else None
    prior = obs.set_dayledger(ledger)
    start = time.perf_counter()
    try:
        engine.run()
    finally:
        elapsed = time.perf_counter() - start
        obs.set_dayledger(prior)
    return elapsed


def test_dayledger_overhead_under_three_percent():
    config = small_config(seed=7, days=60)
    _timed_run(config, ledgered=False)  # warm-up

    baseline = min(_timed_run(config, ledgered=False) for _ in range(RUNS))
    ledgered = min(_timed_run(config, ledgered=True) for _ in range(RUNS))
    budget = baseline * RELATIVE_BUDGET + ABSOLUTE_EPSILON_S
    assert ledgered <= budget, (
        f"ledgered run {ledgered:.3f}s exceeds {budget:.3f}s "
        f"(baseline {baseline:.3f}s)"
    )
