"""Benchmark -- Figure 11: spend affected by fraud competition.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig11(benchmark, bench_context):
    output = benchmark(run_experiment, "fig11", bench_context)
    print()
    print(output.render())
    assert output.charts
