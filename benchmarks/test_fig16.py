"""Benchmark -- Figure 16: fraud CTR under fraud competition.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig16(benchmark, bench_context):
    output = benchmark(run_experiment, "fig16", bench_context)
    print()
    print(output.render())
    assert output.charts
