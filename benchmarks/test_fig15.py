"""Benchmark -- Figure 15: non-fraud CPC under fraud competition.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig15(benchmark, bench_context):
    output = benchmark(run_experiment, "fig15", bench_context)
    print()
    print(output.render())
    assert output.metrics['cpc_norm_usd'] > 0
