"""Benchmark -- Figure 2: fraud account lifetime CDFs.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig02(benchmark, bench_context):
    output = benchmark(run_experiment, "fig2", bench_context)
    print()
    print(output.render())
    assert output.metrics['median_lifetime_from_registration_y1'] < 2.0
