"""Benchmark -- Figure 12: non-fraud ad position, organic vs influenced.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig12(benchmark, bench_context):
    output = benchmark(run_experiment, "fig12", bench_context)
    print()
    print(output.render())
    assert output.charts
