"""Overhead smoke: JSONL telemetry must stay within 3% of total run time.

The acceptance bar from the observability PR: a fully traced run (every
span/event/metric buffered into a :class:`JsonlSink`) costs < 3% over
an untraced run.  Wall-clock comparisons on shared CI boxes are noisy,
so both sides take the minimum of three runs (the classic noise floor
estimator) and the assertion allows a small absolute epsilon for
sub-second configs.
"""

from __future__ import annotations

import time

from repro import obs
from repro.config import small_config
from repro.obs.progress import ProgressSink
from repro.obs.resources import ResourceSampler
from repro.obs.sink import JsonlSink
from repro.simulator.engine import SimulationEngine

RUNS = 3
RELATIVE_BUDGET = 1.03
ABSOLUTE_EPSILON_S = 0.05


def _timed_run(config, sink=None, sinks=(), sampler=None) -> float:
    engine = SimulationEngine(config)
    attached = list(sinks)
    if sink is not None:
        attached.append(sink)
    for s in attached:
        obs.add_sink(s)
    if sampler is not None:
        sampler.start()
    start = time.perf_counter()
    try:
        engine.run()
    finally:
        elapsed = time.perf_counter() - start
        if sampler is not None:
            sampler.stop()
        for s in attached:
            obs.remove_sink(s)
    return elapsed


def test_jsonl_sink_overhead_under_three_percent(tmp_path):
    config = small_config(seed=7, days=60)
    _timed_run(config)  # warm-up: imports, JIT-ish numpy caches

    baseline = min(_timed_run(config) for _ in range(RUNS))
    instrumented = min(
        _timed_run(config, sink=JsonlSink(tmp_path / f"t{i}.jsonl"))
        for i in range(RUNS)
    )
    budget = baseline * RELATIVE_BUDGET + ABSOLUTE_EPSILON_S
    assert instrumented <= budget, (
        f"traced run {instrumented:.3f}s exceeds {budget:.3f}s "
        f"(baseline {baseline:.3f}s)"
    )


def test_full_live_stack_overhead_under_three_percent(tmp_path):
    # The complete live-telemetry stack at once: JSONL sink + progress
    # sidecar (atomic write per heartbeat) + background resource
    # sampler.  Same <3% budget as the sink alone.
    config = small_config(seed=7, days=60)
    _timed_run(config)  # warm-up

    baseline = min(_timed_run(config) for _ in range(RUNS))

    def live(i):
        run_dir = tmp_path / f"live{i}"
        run_dir.mkdir()
        return _timed_run(
            config,
            sinks=[
                JsonlSink(run_dir / "telemetry.jsonl"),
                ProgressSink(run_dir, days=config.days),
            ],
            sampler=ResourceSampler(),
        )

    instrumented = min(live(i) for i in range(RUNS))
    budget = baseline * RELATIVE_BUDGET + ABSOLUTE_EPSILON_S
    assert instrumented <= budget, (
        f"live-instrumented run {instrumented:.3f}s exceeds {budget:.3f}s "
        f"(baseline {baseline:.3f}s)"
    )
