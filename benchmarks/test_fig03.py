"""Benchmark -- Figure 3: weekly fraud activity, in/out of window.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_fig03(benchmark, bench_context):
    output = benchmark(run_experiment, "fig3", bench_context)
    print()
    print(output.render())
    assert output.metrics['late_over_early_spend'] < 1.2
