"""Overhead smoke: the IO fault/retry layer must be ~free when disarmed.

Every chunk, manifest and snapshot write now consults the global IO
shim and runs under the retry loop.  Disarmed (no shim installed -- the
production configuration) that machinery is one global read and one
``try`` frame per write; armed with a non-matching plan it adds a glob
match per fault.  Both must disappear into filesystem noise: the
budget allows 15% over the raw protocol plus an absolute epsilon, with
min-of-three timing on each side (same noise-floor estimator as the
telemetry overhead bench).
"""

from __future__ import annotations

import time

from repro.records.atomic import (
    IO_ERROR,
    IoShim,
    WriteFault,
    atomic_write_bytes,
    set_io_shim,
)

RUNS = 3
WRITES = 200
PAYLOAD = b"\x5a" * 65536  # chunk-scale: 64 KiB per write
RELATIVE_BUDGET = 1.15
ABSOLUTE_EPSILON_S = 0.05


def _timed_writes(tmp_path, label) -> float:
    start = time.perf_counter()
    for index in range(WRITES):
        atomic_write_bytes(tmp_path / f"{label}-{index % 8}.bin", PAYLOAD)
    return time.perf_counter() - start


def test_disarmed_shim_overhead_is_negligible(tmp_path):
    assert set_io_shim(None) is None  # the production configuration
    _timed_writes(tmp_path, "warm")

    baseline = min(_timed_writes(tmp_path, f"off{i}") for i in range(RUNS))

    shim = IoShim(
        [WriteFault("never-matches-*.xyz", action=IO_ERROR, times=10**9)]
    )
    previous = set_io_shim(shim)
    try:
        armed = min(_timed_writes(tmp_path, f"on{i}") for i in range(RUNS))
    finally:
        set_io_shim(previous)

    assert not shim.fired  # the plan never matched a real write
    budget = baseline * RELATIVE_BUDGET + ABSOLUTE_EPSILON_S
    assert armed <= budget, (
        f"armed-but-idle shim writes took {armed:.3f}s, over budget "
        f"{budget:.3f}s (baseline {baseline:.3f}s)"
    )
