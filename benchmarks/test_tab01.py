"""Benchmark -- Table 1: top fraud registration countries.

Measures regenerating the artifact from the shared two-year simulation
logs, prints the reproduced rows/series, and sanity-checks the shape.
"""

from repro.experiments import run_experiment


def test_tab01(benchmark, bench_context):
    output = benchmark(run_experiment, "tab1", bench_context)
    print()
    print(output.render())
    assert output.tables
